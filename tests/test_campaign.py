"""Escalating verification and campaign sweeps."""

import pytest

from repro.dampi.campaign import (
    CampaignResult,
    EscalationResult,
    escalating_verify,
    run_campaign,
)
from repro.dampi.config import DampiConfig
from repro.workloads.patterns import fig3_program, wildcard_lattice


class TestEscalation:
    def test_stops_at_first_error(self):
        result = escalating_verify(fig3_program, 3)
        assert "error found at k=0" in result.stopped_reason
        assert len(result.steps) == 1
        assert any(e.kind == "crash" for e in result.errors)

    def test_clean_program_escalates_to_full_coverage(self):
        result = escalating_verify(
            wildcard_lattice, 4, kwargs={"receives": 3, "senders": 3}
        )
        assert result.stopped_reason == "full space covered"
        labels = [s.label for s in result.steps]
        # k=2 never freezes a node on the 3-deep lattice (bound_frozen == 0),
        # which proves it already walked the unbounded space — the redundant
        # unbounded stage is skipped and its self run never charged
        assert labels == ["k=0", "k=1", "k=2"]
        assert result.final_report.bound_frozen == 0
        assert result.final_report.interleavings == 27
        assert not result.final_report.truncated

    def test_deterministic_program_stops_after_one_stage(self):
        # no wildcards at all: k=0 covers everything with just the self run;
        # before the bound_frozen check this burned one self run per stage
        def no_wildcards(p):
            if p.rank == 0:
                p.world.send(b"x", dest=1)
            elif p.rank == 1:
                p.world.recv(source=0)

        result = escalating_verify(no_wildcards, 2)
        assert result.stopped_reason == "full space covered"
        assert [s.label for s in result.steps] == ["k=0"]
        assert result.total_interleavings == 1

    def test_redundant_bounds_skipped_without_budget_charge(self):
        # a bound equal to one already fully covered is skipped entirely
        result = escalating_verify(
            wildcard_lattice,
            4,
            ks=(1, 0, 1),
            kwargs={"receives": 2, "senders": 2},
        )
        assert [s.bound_k for s in result.steps] == [1]
        assert result.stopped_reason == "full space covered"

    def test_budget_exhaustion(self):
        result = escalating_verify(
            wildcard_lattice,
            4,
            kwargs={"receives": 3, "senders": 3},
            run_budget=10,
        )
        # each stage is capped at the remaining budget, so the total can
        # never exceed budget + (number of stages) self-run minimums
        assert result.total_interleavings <= 10 + len(result.steps)
        assert result.stopped_reason == "run budget exhausted"

    def test_monotone_stage_counts(self):
        result = escalating_verify(
            wildcard_lattice,
            4,
            kwargs={"receives": 3, "senders": 3},
            stop_on_error=False,
        )
        counts = [s.report.interleavings for s in result.steps]
        assert counts == sorted(counts)

    def test_summary_renders(self):
        result = escalating_verify(fig3_program, 3)
        text = result.summary()
        assert "escalating verification" in text
        assert "errors!" in text

    def test_errors_deduplicated_across_stages(self):
        result = escalating_verify(fig3_program, 3, stop_on_error=False)
        kinds = [e.detail for e in result.errors]
        assert len(kinds) == len(set(kinds))


class TestCampaign:
    def test_grid_of_cells(self):
        result = run_campaign(
            wildcard_lattice, [3, 4], kwargs={"receives": 2, "senders": 2}
        )
        assert len(result.cells) == 4  # 2 nprocs x 2 default configs
        assert result.ok

    def test_custom_configs(self):
        configs = {"lamport": DampiConfig(), "vector": DampiConfig(clock_impl="vector")}
        result = run_campaign(
            wildcard_lattice, [3], configs, kwargs={"receives": 2, "senders": 2}
        )
        assert {c.config_name for c in result.cells} == {"lamport", "vector"}

    def test_errors_labelled_with_cell(self):
        result = run_campaign(fig3_program, [3])
        assert not result.ok
        labels = [label for label, _ in result.errors]
        assert any("np=3" in l for l in labels)

    def test_summary_table(self):
        result = run_campaign(
            wildcard_lattice, [3], kwargs={"receives": 2, "senders": 2}
        )
        text = result.summary()
        assert "nprocs" in text and "quick-k0" in text
