"""Distributed CG: numerics, convergence, partition-shape invariance."""

import numpy as np
import pytest

from repro.workloads.cg_solver import (
    cg_program,
    make_spd_system,
    serial_cg,
    solve_gathered,
)

from tests.conftest import run_ok


class TestSystem:
    def test_matrix_is_spd(self):
        a, _ = make_spd_system(24)
        assert np.allclose(a, a.T)
        assert np.all(np.linalg.eigvalsh(a) > 0)

    def test_deterministic(self):
        a1, r1 = make_spd_system(16, seed=9)
        a2, r2 = make_spd_system(16, seed=9)
        assert np.array_equal(a1, a2) and np.array_equal(r1, r2)


class TestSerialReference:
    def test_converges_to_direct_solve(self):
        a, rhs = make_spd_system(20)
        x = serial_cg(a, rhs, iters=60)
        assert np.allclose(x, np.linalg.solve(a, rhs), atol=1e-8)


class TestDistributed:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 7])
    def test_matches_serial_recurrence(self, nprocs):
        n, iters = 28, 10
        res = run_ok(lambda p: solve_gathered(p, n=n, iters=iters), nprocs)
        expected = serial_cg(*make_spd_system(n), iters=iters)
        # identical recurrence, reduction order differs: tight tolerance
        assert np.allclose(res.returns[0], expected, atol=1e-9)

    def test_converges_to_direct_solve(self):
        n = 24
        res = run_ok(lambda p: solve_gathered(p, n=n, iters=80), 4)
        a, rhs = make_spd_system(n)
        assert np.allclose(res.returns[0], np.linalg.solve(a, rhs), atol=1e-7)

    def test_uneven_row_partition(self):
        # 29 rows over 6 ranks
        res = run_ok(lambda p: solve_gathered(p, n=29, iters=12), 6)
        expected = serial_cg(*make_spd_system(29), iters=12)
        assert np.allclose(res.returns[0], expected, atol=1e-9)

    def test_result_independent_of_nprocs(self):
        n, iters = 26, 15
        sols = []
        for nprocs in (2, 5):
            res = run_ok(lambda p: solve_gathered(p, n=n, iters=iters), nprocs)
            sols.append(res.returns[0])
        assert np.allclose(sols[0], sols[1], atol=1e-9)

    def test_residual_decreases(self):
        n = 24
        a, rhs = make_spd_system(n)
        norms = []
        for iters in (2, 8, 30):
            res = run_ok(lambda p: solve_gathered(p, n=n, iters=iters), 3)
            norms.append(float(np.linalg.norm(rhs - a @ res.returns[0])))
        assert norms[0] > norms[1] > norms[2]
