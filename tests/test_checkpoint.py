"""Prefix-sharing replay: checkpoint/restore at decision points.

The headline property mirrors the parallel one: with prefix checkpoints
enabled (the default) every report is *bit-identical* to the full
re-execute-from-``MPI_Init`` walk — across the whole bug zoo, across
``jobs`` settings, across distributed workers, and across injected
worker deaths mid-restore.  Checkpointing is purely an execution-time
optimization; it must never be observable in a report.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.dampi.checkpoint import (
    PrefixCheckpointCache,
    capture_key,
    checkpoint_key,
    snapshot_usable,
)
from repro.dampi.config import DampiConfig
from repro.dampi.decisions import EpochDecisions
from repro.dampi.faults import FAULT_EXIT_CODE
from repro.dampi.verifier import DampiVerifier
from repro.mpi.snapshot import Snapshot
from repro.workloads.bugzoo import ZOO
from repro.workloads.matmult import matmult_program

#: the checkpoint-rich workload: every flip is a rank-0 wildcard receive
#: with all other ranks parked in plain waits (high capture eligibility)
MATMULT_KW = {"n": 4, "blocks_per_slave": 2}


def _canon(report) -> dict:
    """The bit-identity view of a report: its JSON minus the fields that
    are honest about wall-clock (and therefore never reproducible)."""
    d = json.loads(report.to_json())
    d.pop("wall_seconds", None)
    d.pop("telemetry", None)
    return d


def _verify(program, nprocs, kwargs=None, **cfg):
    return DampiVerifier(
        program, nprocs, DampiConfig(**cfg), kwargs=dict(kwargs or {})
    ).verify()


# --------------------------------------------------------------------- #
# the key / the cache                                                    #
# --------------------------------------------------------------------- #


class TestCheckpointKey:
    def test_siblings_share_a_key(self):
        a = EpochDecisions(forced={(0, 0): 1, (0, 1): 2}, flip=(0, 1))
        b = EpochDecisions(forced={(0, 0): 1, (0, 1): 3}, flip=(0, 1))
        assert checkpoint_key(a) == checkpoint_key(b)

    def test_children_do_not_share_with_parents(self):
        parent = EpochDecisions(forced={(0, 0): 1}, flip=(0, 0))
        child = EpochDecisions(forced={(0, 0): 1, (0, 1): 2}, flip=(0, 1))
        assert checkpoint_key(parent) != checkpoint_key(child)

    def test_different_prefix_different_key(self):
        a = EpochDecisions(forced={(0, 0): 1, (0, 1): 2}, flip=(0, 1))
        b = EpochDecisions(forced={(0, 0): 2, (0, 1): 2}, flip=(0, 1))
        assert checkpoint_key(a) != checkpoint_key(b)

    def test_self_run_has_no_key(self):
        assert checkpoint_key(EpochDecisions()) is None

    def test_expect_siblings_json_round_trip(self):
        d = EpochDecisions(forced={(0, 1): 2}, flip=(0, 1), expect_siblings=False)
        back = EpochDecisions.from_json(d.to_json())
        assert back.expect_siblings is False
        # default True, and absent from the JSON payload when True
        d2 = EpochDecisions(forced={(0, 1): 2}, flip=(0, 1))
        assert "expect_siblings" not in json.loads(d2.to_json())
        assert EpochDecisions.from_json(d2.to_json()).expect_siblings is True

    def test_expect_siblings_never_part_of_identity(self):
        a = EpochDecisions(forced={(0, 1): 2}, flip=(0, 1), expect_siblings=True)
        b = EpochDecisions(forced={(0, 1): 2}, flip=(0, 1), expect_siblings=False)
        assert a == b
        assert checkpoint_key(a) == checkpoint_key(b)


def _snap(n: int) -> Snapshot:
    return Snapshot(payload=b"x" * n, fingerprint="f", nbytes=n, capture_seconds=0.0)


class TestPrefixCheckpointCache:
    def test_put_get_and_bytes_held(self):
        cache = PrefixCheckpointCache(100)
        assert cache.put("a", _snap(40))
        assert cache.get("a") is not None
        assert cache.bytes_held == 40
        assert cache.get("missing") is None

    def test_lru_eviction_under_budget_pressure(self):
        cache = PrefixCheckpointCache(100)
        cache.put("a", _snap(40))
        cache.put("b", _snap(40))
        cache.get("a")  # refresh a; b is now least-recently-used
        cache.put("c", _snap(40))
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1
        assert cache.bytes_held <= 100

    def test_oversized_snapshot_rejected_not_thrashed(self):
        cache = PrefixCheckpointCache(100)
        cache.put("a", _snap(40))
        assert not cache.put("big", _snap(101))
        assert "big" not in cache and "a" in cache
        assert cache.skips == 1

    def test_replacing_a_key_reclaims_its_bytes(self):
        cache = PrefixCheckpointCache(100)
        cache.put("a", _snap(60))
        cache.put("a", _snap(10))
        assert cache.bytes_held == 10

    def test_stats_shape(self):
        cache = PrefixCheckpointCache(100)
        cache.hits, cache.misses = 3, 1
        s = cache.stats()
        assert s["hit_rate"] == 0.75
        assert set(s) >= {
            "hits", "misses", "evictions", "skips", "entries",
            "bytes_held", "budget_bytes", "restore_ms", "capture_ms",
            "ancestor_hits", "suffix_captures", "depth_hits",
        }

    def test_depth_hits_bucketed_by_restore_depth(self):
        cache = PrefixCheckpointCache(100)
        deep, shallow = _snap(1), _snap(1)
        deep.depth, shallow.depth = 7, 2
        cache.record_hit(deep)
        cache.record_hit(deep)
        cache.record_hit(shallow)
        assert cache.stats()["depth_hits"] == {"2": 1, "7": 2}


def _meta_snap(n: int, at, decided: dict, natural=None, pending=()) -> Snapshot:
    """A synthetic deep-sharing snapshot: capture metadata attached the
    way the replay session attaches it."""
    s = _snap(n)
    s.key = capture_key(at, decided)
    s.depth = len(decided)
    s.meta = {
        "decided": dict(decided),
        "natural": dict(natural or {}),
        "pending": tuple(pending),
    }
    return s


class TestHierarchicalFind:
    """`find` resolves the deepest usable snapshot: exact key first, then
    the ancestor scan over capture metadata."""

    CONSUMER = EpochDecisions(
        forced={(0, 0): 1, (0, 1): 2, (0, 2): 2, (0, 3): 3}, flip=(0, 3)
    )

    def test_exact_key_preferred_over_ancestors(self):
        cache = PrefixCheckpointCache(1000)
        exact = _meta_snap(10, (0, 3), {(0, 0): 1, (0, 1): 2, (0, 2): 2})
        anc = _meta_snap(10, (0, 2), {(0, 0): 1, (0, 1): 2})
        cache.put(anc.key, anc)
        cache.put(exact.key, exact)
        assert cache.find(self.CONSUMER) is exact
        assert cache.ancestor_hits == 0

    def test_deepest_usable_ancestor_wins(self):
        cache = PrefixCheckpointCache(1000)
        d1 = _meta_snap(10, (0, 1), {(0, 0): 1})
        d2 = _meta_snap(10, (0, 2), {(0, 0): 1, (0, 1): 2})
        cache.put(d1.key, d1)
        cache.put(d2.key, d2)
        assert cache.find(self.CONSUMER) is d2
        assert cache.ancestor_hits == 1

    def test_ancestor_with_wrong_forced_value_rejected(self):
        cache = PrefixCheckpointCache(1000)
        wrong = _meta_snap(10, (0, 2), {(0, 0): 1, (0, 1): 9})
        cache.put(wrong.key, wrong)
        assert cache.find(self.CONSUMER) is None

    def test_naturally_decided_epoch_forced_by_consumer_rejected(self):
        # A natural wildcard post and a forced (directed) post of the
        # same epoch are NOT observably equivalent through the piggyback
        # layer, even at the same matched value — the snapshot must not
        # serve a schedule that forces what it matched naturally.
        snap = _meta_snap(
            10, (0, 2), {(0, 0): 1, (0, 1): 2}, natural={(0, 1): "recv"}
        )
        assert not snapshot_usable(snap, self.CONSUMER)
        cache = PrefixCheckpointCache(1000)
        cache.put(snap.key, snap)
        assert cache.find(self.CONSUMER) is None

    def test_naturally_decided_epoch_left_natural_is_fine(self):
        consumer = EpochDecisions(forced={(0, 0): 1, (0, 3): 3}, flip=(0, 3))
        snap = _meta_snap(
            10, (0, 2), {(0, 0): 1, (1, 4): 2}, natural={(1, 4): "recv"}
        )
        assert snapshot_usable(snap, consumer)

    def test_pending_epoch_in_forced_map_rejected(self):
        snap = _meta_snap(
            10, (0, 2), {(0, 0): 1, (0, 1): 2}, pending=((0, 2),)
        )
        assert not snapshot_usable(snap, self.CONSUMER)

    def test_flip_already_decided_rejected(self):
        snap = _meta_snap(
            10, (0, 3), {(0, 0): 1, (0, 1): 2, (0, 2): 2, (0, 3): 3}
        )
        assert not snapshot_usable(snap, self.CONSUMER)

    def test_meta_less_snapshot_keeps_exact_key_semantics(self):
        # pre-deep-sharing snapshots (no meta) serve their exact key but
        # never the ancestor scan
        cache = PrefixCheckpointCache(1000)
        legacy = _snap(10)
        key = checkpoint_key(self.CONSUMER)
        cache.put(key, legacy)
        assert cache.find(self.CONSUMER) is legacy
        deeper = EpochDecisions(
            forced={**self.CONSUMER.forced, (0, 4): 1}, flip=(0, 4)
        )
        assert cache.find(deeper) is None

    def test_find_touches_lru_position(self):
        cache = PrefixCheckpointCache(100)
        a = _meta_snap(40, (0, 3), {(0, 0): 1, (0, 1): 2, (0, 2): 2})
        b = _meta_snap(40, (9, 9), {(8, 8): 1, (7, 7): 1, (6, 6): 1})
        cache.put(a.key, a)
        cache.put(b.key, b)
        cache.find(self.CONSUMER)  # touches a; b is now LRU-oldest
        c = _meta_snap(40, (5, 5), {(4, 4): 1, (3, 3): 1, (2, 2): 1})
        cache.put(c.key, c)
        assert b.key not in cache
        assert a.key in cache and c.key in cache

    def test_eviction_prefers_keeping_deep_prefixes(self):
        cache = PrefixCheckpointCache(100)
        deep = _meta_snap(40, (0, 5), {(0, i): 1 for i in range(5)})
        shallow = _meta_snap(40, (9, 9), {(8, 8): 1})
        cache.put(deep.key, deep)
        cache.put(shallow.key, shallow)
        newer = _meta_snap(40, (5, 5), {(4, 4): 1, (3, 3): 1})
        cache.put(newer.key, newer)
        # deep is older than shallow, but the shallow one is evicted
        assert shallow.key not in cache
        assert deep.key in cache and newer.key in cache
        assert cache.evictions == 1

    def test_ineligible_memo_survives_key_scheme_migration(self):
        # sibling-scheme keys (flip, sorted-forced-minus-flip) and deep
        # capture keys (at, sorted-decided) are the same tuple shape, so
        # a key poisoned under either scheme stays poisoned for both
        d = EpochDecisions(forced={(0, 0): 1, (0, 1): 2}, flip=(0, 1))
        cache = PrefixCheckpointCache(1000)
        cache.ineligible.add(checkpoint_key(d))
        assert capture_key(d.flip, {(0, 0): 1}) in cache.ineligible


# --------------------------------------------------------------------- #
# bit-identity: checkpointed replay vs full re-execution                 #
# --------------------------------------------------------------------- #


class TestZooBitIdentity:
    """Satellite: with and without checkpoints, same report — zoo-wide."""

    @pytest.mark.parametrize("entry", ZOO, ids=[e.name for e in ZOO])
    def test_bugzoo_reports_identical(self, entry):
        on = _verify(entry.program, entry.nprocs, max_interleavings=40)
        off = _verify(
            entry.program, entry.nprocs,
            max_interleavings=40, prefix_checkpoints=False,
        )
        assert _canon(on) == _canon(off)

    def test_matmult_identical_and_restores_actually_happen(self):
        v = DampiVerifier(
            matmult_program, 4, DampiConfig(), kwargs=dict(MATMULT_KW)
        )
        on = v.verify()
        stats = on.parallel_stats["checkpoint"]
        assert stats["enabled"]
        assert stats["hits"] > 0  # the speedup path was really exercised
        assert stats["restore_ms"] > 0
        off = _verify(matmult_program, 4, MATMULT_KW, prefix_checkpoints=False)
        off_ckpt = off.parallel_stats["checkpoint"]
        assert not off_ckpt["enabled"] and off_ckpt["hits"] == 0
        assert _canon(on) == _canon(off)

    def test_checkpoint_interval_thins_recordings_identically(self):
        on = _verify(matmult_program, 4, MATMULT_KW, checkpoint_interval=2)
        off = _verify(matmult_program, 4, MATMULT_KW, prefix_checkpoints=False)
        assert _canon(on) == _canon(off)

    def test_tiny_budget_still_identical(self):
        # a 1 MiB budget forces eviction churn; correctness must not care
        on = _verify(matmult_program, 4, MATMULT_KW, checkpoint_cache_mb=1)
        off = _verify(matmult_program, 4, MATMULT_KW, prefix_checkpoints=False)
        assert _canon(on) == _canon(off)


class TestJobsAndDistIdentity:
    def test_jobs2_checkpointed_matches_serial_full(self):
        on = _verify(
            matmult_program, 4, MATMULT_KW, jobs=2, force_jobs=True
        )
        off = _verify(matmult_program, 4, MATMULT_KW, prefix_checkpoints=False)
        assert _canon(on) == _canon(off)
        ckpt = on.parallel_stats["checkpoint"]
        assert ckpt["enabled"]
        # pool workers execute the replays; their caches report upstream
        assert ckpt["workers_reporting"] >= 1
        assert ckpt["hits"] > 0

    def test_two_worker_dist_matches_serial_full(self):
        from repro.dist import distributed_verify

        off = _verify(matmult_program, 4, MATMULT_KW, prefix_checkpoints=False)
        rep = distributed_verify(
            matmult_program, 4, DampiConfig(),
            workers=2, kwargs=dict(MATMULT_KW),
        )
        assert _canon(rep) == _canon(off)
        counters = rep.telemetry["metrics"]["counters"]
        # sibling leases landing on the same worker restored from cache
        assert counters.get("ckpt.hits", 0) > 0


class TestStealSplitHint:
    """Satellite: ``expect_siblings`` goes stale across dist
    steal-splits (the victim's sibling set is rewritten after leases are
    cut), so a ``False`` hint must never suppress a deep-sharing
    recording — every miss records, in-run captures amortize it."""

    def test_no_siblings_hint_still_records(self):
        from repro.dampi.explorer import ScheduleGenerator

        v = DampiVerifier(
            matmult_program, 4, DampiConfig(), kwargs=dict(MATMULT_KW)
        )
        try:
            _, trace = v.run_once(None)  # cold self run
            explorer = ScheduleGenerator()
            explorer.seed(trace)
            d = explorer.next_decisions()
            assert d is not None and d.flip is not None
            hinted = EpochDecisions(
                forced=dict(d.forced), flip=d.flip, expect_siblings=False
            )
            v.run_once(hinted)  # second run: persistent session records
            sess = v._session
            assert sess is not None
            assert sess.checkpoint_cache is not None
            assert checkpoint_key(hinted) in sess.checkpoint_cache
            assert sess.checkpoint_cache.misses == 1
        finally:
            v.close()


# --------------------------------------------------------------------- #
# demotion: non-snapshotable resources fall back to full replay          #
# --------------------------------------------------------------------- #


class TestDemotion:
    def test_trace_ops_demotes_with_reason_and_identical_report(self):
        v = DampiVerifier(
            matmult_program, 4,
            DampiConfig(trace_ops=True), kwargs=dict(MATMULT_KW),
        )
        on = v.verify()
        ckpt = on.parallel_stats["checkpoint"]
        assert not ckpt["enabled"]
        assert ckpt["demote_reason"]
        assert ckpt["hits"] == 0
        off = _verify(
            matmult_program, 4, MATMULT_KW,
            trace_ops=True, prefix_checkpoints=False,
        )
        assert _canon(on) == _canon(off)

    def test_disabled_by_config_reports_disabled_block(self):
        rep = _verify(
            matmult_program, 4, MATMULT_KW, prefix_checkpoints=False
        )
        ckpt = rep.parallel_stats["checkpoint"]
        assert not ckpt["enabled"]
        assert ckpt["hits"] == 0 and ckpt["misses"] == 0


# --------------------------------------------------------------------- #
# fault matrix: death mid-restore                                        #
# --------------------------------------------------------------------- #


def _journaled_child(journal_dir, fault_plan):
    DampiVerifier(
        matmult_program, 4,
        DampiConfig(fault_plan=fault_plan), kwargs=dict(MATMULT_KW),
    ).verify(journal=journal_dir)
    os._exit(0)  # reached only if the plan never killed us


class TestKillMidRestore:
    def test_serial_kill_at_restore_then_resume_identical(self, tmp_path):
        """The campaign dies *inside* a snapshot restore; the journal
        resume re-executes only uncovered runs and the report matches the
        uninterrupted oracle bit for bit."""
        oracle = _verify(matmult_program, 4, MATMULT_KW)
        journal_dir = tmp_path / "j"
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(
            target=_journaled_child,
            args=(str(journal_dir), "kill@restore:0.1"),
        )
        proc.start()
        proc.join(120)
        assert proc.exitcode == FAULT_EXIT_CODE, proc.exitcode
        resumed = DampiVerifier(
            matmult_program, 4, DampiConfig(), kwargs=dict(MATMULT_KW)
        ).verify(journal=journal_dir)
        assert resumed.journal_stats["replayed"] > 0
        assert _canon(resumed) == _canon(oracle)

    def test_dist_worker_killed_mid_restore_identical(self, tmp_path):
        """A shard worker dies mid-restore; the coordinator re-issues the
        lease (the shard journal replays finished runs) and the assembled
        report still matches the serial oracle exactly."""
        from repro.dist import distributed_verify

        oracle = _verify(matmult_program, 4, MATMULT_KW)
        rep = distributed_verify(
            matmult_program, 4,
            DampiConfig(fault_plan="kill@restore:0.1"),
            workers=2, kwargs=dict(MATMULT_KW),
            journal=tmp_path / "j",
        )
        assert rep.parallel_stats["worker_deaths"] >= 1
        assert _canon(rep) == _canon(oracle)
