"""The `python -m repro` command-line front end."""

import json

import pytest

from repro.cli import main, resolve_program


class TestResolveProgram:
    def test_resolves(self):
        fn = resolve_program("repro.workloads.patterns:fig3_program")
        from repro.workloads.patterns import fig3_program

        assert fn is fig3_program

    def test_missing_colon(self):
        with pytest.raises(SystemExit):
            resolve_program("repro.workloads.patterns")

    def test_bad_module(self):
        with pytest.raises(SystemExit):
            resolve_program("no.such.module:fn")

    def test_bad_attr(self):
        with pytest.raises(SystemExit):
            resolve_program("repro.workloads.patterns:nope")

    def test_not_callable(self):
        with pytest.raises(SystemExit):
            resolve_program("repro.workloads.patterns:ANY_SOURCE")


class TestVerifyCommand:
    def test_finds_fig3_and_exits_nonzero(self, capsys):
        rc = main(
            ["verify", "repro.workloads.patterns:fig3_program", "--nprocs", "3"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "WildcardBugError" in out
        assert "interleavings explored : 2" in out

    def test_clean_program_exits_zero(self, capsys):
        rc = main(
            [
                "verify",
                "repro.workloads.patterns:wildcard_lattice",
                "--nprocs",
                "3",
                "--kwargs",
                json.dumps({"receives": 2, "senders": 2}),
            ]
        )
        assert rc == 0
        assert "no errors found" in capsys.readouterr().out

    def test_bound_k_and_budget_flags(self, capsys):
        rc = main(
            [
                "verify",
                "repro.workloads.patterns:wildcard_lattice",
                "--nprocs",
                "4",
                "--kwargs",
                json.dumps({"receives": 3, "senders": 3}),
                "--bound-k",
                "0",
            ]
        )
        assert rc == 0
        assert "interleavings explored : 7" in capsys.readouterr().out

    def test_witness_dir(self, tmp_path, capsys):
        rc = main(
            [
                "verify",
                "repro.workloads.patterns:fig3_program",
                "--nprocs",
                "3",
                "--witness-dir",
                str(tmp_path),
            ]
        )
        assert rc == 1
        witnesses = list(tmp_path.glob("error*.json"))
        assert len(witnesses) == 1

    def test_baseline_flag_runs_isp(self, capsys):
        rc = main(
            [
                "verify",
                "repro.workloads.patterns:fig3_program",
                "--nprocs",
                "3",
                "--baseline",
            ]
        )
        assert rc == 1
        assert "vector clocks" in capsys.readouterr().out  # ISP forces vector

    def test_monitor_alert_printed(self, capsys):
        rc = main(
            ["verify", "repro.workloads.patterns:fig10_program", "--nprocs", "3"]
        )
        assert rc == 0  # no error found (the §V omission), only an alert
        assert "alert:" in capsys.readouterr().out

    def test_dual_clock_flag(self, capsys):
        rc = main(
            [
                "verify",
                "repro.workloads.patterns:fig10_program",
                "--nprocs",
                "3",
                "--clock",
                "lamport_dual",
            ]
        )
        assert rc == 1  # dual clocks expose the hidden crash
        assert "crash" in capsys.readouterr().out


class TestReplayCommand:
    def test_replay_reproduces(self, tmp_path, capsys):
        main(
            [
                "verify",
                "repro.workloads.patterns:fig3_program",
                "--nprocs",
                "3",
                "--witness-dir",
                str(tmp_path),
            ]
        )
        capsys.readouterr()
        witness = next(tmp_path.glob("error*.json"))
        rc = main(
            [
                "replay",
                "repro.workloads.patterns:fig3_program",
                "--nprocs",
                "3",
                "--decisions",
                str(witness),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "WildcardBugError" in out


class TestEscalateCommand:
    def test_escalate_finds_error_early(self, capsys):
        rc = main(
            ["escalate", "repro.workloads.patterns:fig3_program", "--nprocs", "3"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "error found at k=0" in out

    def test_escalate_covers_clean_program(self, capsys):
        rc = main(
            [
                "escalate",
                "repro.workloads.patterns:wildcard_lattice",
                "--nprocs",
                "4",
                "--kwargs",
                json.dumps({"receives": 3, "senders": 3}),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "full space covered" in out
        # k=2 already proves full coverage on the 3-deep lattice (its bound
        # never froze a node), so the redundant unbounded stage is skipped
        assert "k=2" in out
        assert "unbounded" not in out


class TestTelemetryFlags:
    ARGS = [
        "verify",
        "repro.workloads.patterns:wildcard_lattice",
        "--nprocs", "3",
        "--kwargs", json.dumps({"receives": 2, "senders": 2}),
    ]

    def test_trace_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        rc = main(self.ARGS + ["--trace-out", str(trace)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        records = doc["traceEvents"]
        assert any(r["ph"] == "X" and r["name"] == "run" for r in records)
        lanes = {r["tid"] for r in records}
        assert {0, 1, 2, 3} <= lanes  # scheduler + 3 rank lanes
        assert "chrome trace saved" in capsys.readouterr().out

    def test_events_out_roundtrips_and_stats_renders(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        rc = main(self.ARGS + ["--events-out", str(events)])
        assert rc == 0
        capsys.readouterr()
        assert main(["stats", str(events)]) == 0
        out = capsys.readouterr().out
        assert "event log:" in out and "by category" in out

    def test_json_out_and_stats_renders_report(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        rc = main(self.ARGS + ["--json-out", str(report)])
        assert rc == 0
        payload = json.loads(report.read_text())
        assert payload["version"] == 3
        assert payload["telemetry"]["metrics"]["counters"]["campaign.runs"] == 4
        capsys.readouterr()
        assert main(["stats", str(report)]) == 0
        out = capsys.readouterr().out
        assert "campaign.runs" in out and "counters" in out

    def test_stats_rejects_unrelated_file(self, tmp_path):
        junk = tmp_path / "junk.txt"
        junk.write_text("not telemetry\n")
        with pytest.raises(SystemExit):
            main(["stats", str(junk)])

    def test_show_runs_footer_and_all_flag(self, capsys):
        args = [
            "verify",
            "repro.workloads.patterns:wildcard_lattice",
            "--nprocs", "5",
            "--kwargs", json.dumps({"receives": 3, "senders": 4}),
            "--max-interleavings", "60",
            "--show-runs",
        ]
        rc = main(args)
        capped = capsys.readouterr().out
        rc_all = main(args + ["--all"])
        full = capsys.readouterr().out
        assert rc == rc_all == 0
        assert "more runs (use --all)" in capped
        assert "more runs" not in full
        assert full.count("\n") > capped.count("\n")

    def test_progress_heartbeat_written_to_stderr(self, capsys):
        rc = main(self.ARGS + ["--progress", "0"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "[dampi] runs" in err and "queued" in err
