"""The `python -m repro` command-line front end."""

import json

import pytest

from repro.cli import main, resolve_program


class TestResolveProgram:
    def test_resolves(self):
        fn = resolve_program("repro.workloads.patterns:fig3_program")
        from repro.workloads.patterns import fig3_program

        assert fn is fig3_program

    def test_missing_colon(self):
        with pytest.raises(SystemExit):
            resolve_program("repro.workloads.patterns")

    def test_bad_module(self):
        with pytest.raises(SystemExit):
            resolve_program("no.such.module:fn")

    def test_bad_attr(self):
        with pytest.raises(SystemExit):
            resolve_program("repro.workloads.patterns:nope")

    def test_not_callable(self):
        with pytest.raises(SystemExit):
            resolve_program("repro.workloads.patterns:ANY_SOURCE")


class TestVerifyCommand:
    def test_finds_fig3_and_exits_nonzero(self, capsys):
        rc = main(
            ["verify", "repro.workloads.patterns:fig3_program", "--nprocs", "3"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "WildcardBugError" in out
        assert "interleavings explored : 2" in out

    def test_clean_program_exits_zero(self, capsys):
        rc = main(
            [
                "verify",
                "repro.workloads.patterns:wildcard_lattice",
                "--nprocs",
                "3",
                "--kwargs",
                json.dumps({"receives": 2, "senders": 2}),
            ]
        )
        assert rc == 0
        assert "no errors found" in capsys.readouterr().out

    def test_bound_k_and_budget_flags(self, capsys):
        rc = main(
            [
                "verify",
                "repro.workloads.patterns:wildcard_lattice",
                "--nprocs",
                "4",
                "--kwargs",
                json.dumps({"receives": 3, "senders": 3}),
                "--bound-k",
                "0",
            ]
        )
        assert rc == 0
        assert "interleavings explored : 7" in capsys.readouterr().out

    def test_witness_dir(self, tmp_path, capsys):
        rc = main(
            [
                "verify",
                "repro.workloads.patterns:fig3_program",
                "--nprocs",
                "3",
                "--witness-dir",
                str(tmp_path),
            ]
        )
        assert rc == 1
        witnesses = list(tmp_path.glob("error*.json"))
        assert len(witnesses) == 1

    def test_baseline_flag_runs_isp(self, capsys):
        rc = main(
            [
                "verify",
                "repro.workloads.patterns:fig3_program",
                "--nprocs",
                "3",
                "--baseline",
            ]
        )
        assert rc == 1
        assert "vector clocks" in capsys.readouterr().out  # ISP forces vector

    def test_monitor_alert_printed(self, capsys):
        rc = main(
            ["verify", "repro.workloads.patterns:fig10_program", "--nprocs", "3"]
        )
        assert rc == 0  # no error found (the §V omission), only an alert
        assert "alert:" in capsys.readouterr().out

    def test_dual_clock_flag(self, capsys):
        rc = main(
            [
                "verify",
                "repro.workloads.patterns:fig10_program",
                "--nprocs",
                "3",
                "--clock",
                "lamport_dual",
            ]
        )
        assert rc == 1  # dual clocks expose the hidden crash
        assert "crash" in capsys.readouterr().out


class TestReplayCommand:
    def test_replay_reproduces(self, tmp_path, capsys):
        main(
            [
                "verify",
                "repro.workloads.patterns:fig3_program",
                "--nprocs",
                "3",
                "--witness-dir",
                str(tmp_path),
            ]
        )
        capsys.readouterr()
        witness = next(tmp_path.glob("error*.json"))
        rc = main(
            [
                "replay",
                "repro.workloads.patterns:fig3_program",
                "--nprocs",
                "3",
                "--decisions",
                str(witness),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "WildcardBugError" in out


class TestEscalateCommand:
    def test_escalate_finds_error_early(self, capsys):
        rc = main(
            ["escalate", "repro.workloads.patterns:fig3_program", "--nprocs", "3"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "error found at k=0" in out

    def test_escalate_covers_clean_program(self, capsys):
        rc = main(
            [
                "escalate",
                "repro.workloads.patterns:wildcard_lattice",
                "--nprocs",
                "4",
                "--kwargs",
                json.dumps({"receives": 3, "senders": 3}),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "full space covered" in out
        # k=2 already proves full coverage on the 3-deep lattice (its bound
        # never froze a node), so the redundant unbounded stage is skipped
        assert "k=2" in out
        assert "unbounded" not in out
