"""Unit and property tests for Lamport and vector clocks."""

import pytest
from hypothesis import given, strategies as st

from repro.clocks import (
    LamportClock,
    LamportStamp,
    VectorClock,
    VectorStamp,
    causally_before,
    concurrent,
    make_clock,
)


class TestLamportClock:
    def test_starts_at_zero(self):
        assert LamportClock(0).time == 0

    def test_tick_increments(self):
        c = LamportClock(0)
        c.tick()
        c.tick()
        assert c.time == 2

    def test_merge_takes_max(self):
        c = LamportClock(0, time=3)
        c.merge(LamportStamp(7))
        assert c.time == 7
        c.merge(LamportStamp(2))
        assert c.time == 7

    def test_merge_does_not_tick(self):
        # paper Algorithm 1: receives merge (max) without incrementing
        c = LamportClock(0, time=3)
        c.merge(LamportStamp(3))
        assert c.time == 3

    def test_snapshot_is_immutable_value(self):
        c = LamportClock(1, time=5)
        s = c.snapshot()
        c.tick()
        assert s.time == 5 and c.time == 6

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            LamportClock(0, time=-1)

    def test_stamp_ordering(self):
        assert LamportStamp(1) < LamportStamp(2)
        assert LamportStamp(2) == LamportStamp(2, rank=9)  # rank is metadata
        assert LamportStamp(1).causally_before(LamportStamp(2))
        assert not LamportStamp(2).causally_before(LamportStamp(2))

    def test_stamp_leq_is_reflexive(self):
        assert LamportStamp(4).leq(LamportStamp(4))
        assert LamportStamp(4).leq(LamportStamp(5))
        assert not LamportStamp(5).leq(LamportStamp(4))

    def test_lamport_totally_orders_everything(self):
        # distinct values are never concurrent — the §II-C imprecision
        assert not concurrent(LamportStamp(1), LamportStamp(2))


class TestVectorClock:
    def test_tick_increments_own_component(self):
        c = VectorClock(1, 3)
        c.tick()
        assert c.snapshot().components == (0, 1, 0)
        assert c.time == 1  # scalar view = own component

    def test_merge_componentwise_max(self):
        c = VectorClock(0, 3)
        c.tick()
        c.merge(VectorStamp((0, 5, 2)))
        assert c.snapshot().components == (1, 5, 2)

    def test_rank_bounds(self):
        with pytest.raises(ValueError):
            VectorClock(3, 3)

    def test_partial_order(self):
        a = VectorStamp((1, 0))
        b = VectorStamp((1, 1))
        c = VectorStamp((0, 1))
        assert a.causally_before(b)
        assert not b.causally_before(a)
        assert concurrent(a, c)

    def test_leq_requires_all_components(self):
        assert VectorStamp((1, 1)).leq(VectorStamp((1, 2)))
        assert not VectorStamp((1, 2)).leq(VectorStamp((2, 1)))
        assert VectorStamp((1, 2)).leq(VectorStamp((1, 2)))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            VectorStamp((1,)).causally_before(VectorStamp((1, 2)))
        with pytest.raises(ValueError):
            VectorClock(0, 2).merge(VectorStamp((1, 2, 3)))

    def test_equal_stamps_not_causally_before(self):
        s = VectorStamp((2, 3))
        assert not s.causally_before(VectorStamp((2, 3)))


class TestFactory:
    def test_make_lamport(self):
        assert isinstance(make_clock("lamport", 0, 4), LamportClock)

    def test_make_vector(self):
        c = make_clock("vector", 2, 4)
        assert isinstance(c, VectorClock) and len(c.snapshot()) == 4

    def test_unknown_impl(self):
        with pytest.raises(ValueError):
            make_clock("hybrid", 0, 4)


# ---------------------------------------------------------------------- #
# property tests: simulate random message histories with both clocks and #
# check the Lamport/vector consistency theorem                           #
# ---------------------------------------------------------------------- #

events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # acting process
        st.sampled_from(["tick", "send"]),
        st.integers(min_value=0, max_value=3),  # send target
    ),
    max_size=60,
)


@given(events)
def test_vector_order_implies_lamport_order(history):
    """VC(a) < VC(b) must imply LC(a) < LC(b) (paper §II-C), on arbitrary
    tick/send/receive histories over 4 processes."""
    n = 4
    lcs = [LamportClock(i) for i in range(n)]
    vcs = [VectorClock(i, n) for i in range(n)]
    stamps = []  # (lamport stamp, vector stamp) per recorded event
    for proc, kind, target in history:
        if kind == "tick":
            lcs[proc].tick()
            vcs[proc].tick()
        else:
            # a send delivers instantly to the target (tick sender per
            # classic VC rules so distinct events have distinct stamps)
            lcs[proc].tick()
            vcs[proc].tick()
            ls, vs = lcs[proc].snapshot(), vcs[proc].snapshot()
            if target != proc:
                lcs[target].merge(ls)
                vcs[target].merge(vs)
        stamps.append((lcs[proc].snapshot(), vcs[proc].snapshot()))
    for la, va in stamps:
        for lb, vb in stamps:
            if va.causally_before(vb):
                assert la.causally_before(lb) or la.time == lb.time or la.time < lb.time
                # the strict theorem: VC-before implies LC <=; with
                # sender ticks it is strictly <
                assert la.time <= lb.time


@given(events)
def test_vector_leq_antisymmetric_up_to_equality(history):
    n = 4
    vcs = [VectorClock(i, n) for i in range(n)]
    stamps = []
    for proc, kind, target in history:
        vcs[proc].tick()
        if kind == "send" and target != proc:
            vcs[target].merge(vcs[proc].snapshot())
        stamps.append(vcs[proc].snapshot())
    for a in stamps:
        for b in stamps:
            if a.leq(b) and b.leq(a):
                assert a == b


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20))
def test_lamport_merge_is_max_fold(values):
    c = LamportClock(0)
    for v in values:
        c.merge(LamportStamp(v))
    assert c.time == max(values + [0])
