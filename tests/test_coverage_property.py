"""Coverage soundness + completeness, checked against brute-force ground truth.

For a family of programs whose feasible match outcomes are enumerable in
closed form — rank 0 posts ``R`` sequential wildcard receives; sender
``s`` fires ``c_s`` independent messages — the exact outcome set is every
length-``R`` source sequence using source ``s`` at most ``c_s`` times
(non-overtaking makes which *message* of a source matched determined by
the count so far, so the source sequence is the whole story).

DAMPI must explore **exactly** that set: anything missing breaks the
paper's completeness claim (§II-E) for non-cross-coupled patterns;
anything extra breaks soundness.  This holds for both clock back-ends
here because the family has no cross-coupled receives (rank 0 is the only
receiver), which is precisely the condition under which the paper argues
Lamport clocks lose nothing.
"""

from __future__ import annotations

from itertools import product

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier
from repro.mpi.constants import ANY_SOURCE


def funnel_program(p, counts: tuple[int, ...], receives: int):
    """Rank 0 wildcard-receives ``receives`` times; rank ``s`` (1-based)
    sends ``counts[s-1]`` messages."""
    if p.rank == 0:
        for _ in range(receives):
            p.world.recv(source=ANY_SOURCE, tag=0)
    elif p.rank - 1 < len(counts):
        for i in range(counts[p.rank - 1]):
            p.world.send((p.rank, i), dest=0, tag=0)


def expected_outcomes(counts: tuple[int, ...], receives: int) -> set[tuple[int, ...]]:
    """All feasible source sequences for the funnel family."""
    sources = [s + 1 for s in range(len(counts))]
    out = set()
    for seq in product(sources, repeat=receives):
        if all(seq.count(s + 1) <= counts[s] for s in range(len(counts))):
            out.add(seq)
    return out


def observed_outcomes(report) -> set[tuple[int, ...]]:
    """Per-run match sequences of rank 0's epochs, ordered by clock."""
    out = set()
    for run in report.runs:
        pairs = sorted((key, src) for (key, src) in run.outcome if key[0] == 0)
        out.add(tuple(src for _, src in pairs))
    return out


counts_strategy = st.lists(
    st.integers(min_value=0, max_value=2), min_size=2, max_size=3
).map(tuple)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(counts=counts_strategy, receives=st.integers(min_value=1, max_value=3))
@pytest.mark.parametrize("clock_impl", ["lamport", "vector"])
def test_funnel_coverage_is_exact(clock_impl, counts, receives):
    total = sum(counts)
    if receives > total:
        # every interleaving deadlocks; covered by the dedicated test below
        receives = max(1, total)
    if total == 0:
        return
    cfg = DampiConfig(clock_impl=clock_impl, enable_monitor=False)
    rep = DampiVerifier(
        funnel_program, len(counts) + 1, cfg, kwargs={"counts": counts, "receives": receives}
    ).verify()
    assert rep.ok, rep.summary()
    expected = expected_outcomes(counts, receives)
    assert observed_outcomes(rep) == expected
    # optimality: the walk never repeats an outcome on this family
    assert rep.interleavings == len(expected)


def test_starved_funnel_deadlocks_in_every_interleaving():
    cfg = DampiConfig(enable_monitor=False)
    rep = DampiVerifier(
        funnel_program, 3, cfg, kwargs={"counts": (1, 0), "receives": 2}
    ).verify()
    assert rep.deadlocks
    assert all("deadlock" in r.error_kinds for r in rep.runs)


def test_two_receivers_cross_free_still_exact():
    """Two independent funnels (ranks 0 and 1 both receive from disjoint
    sender sets) — outcome space is the product of the two."""

    def prog(p):
        if p.rank == 0:
            for _ in range(2):
                p.world.recv(source=ANY_SOURCE, tag=0)
        elif p.rank == 1:
            for _ in range(2):
                p.world.recv(source=ANY_SOURCE, tag=0)
        elif p.rank in (2, 3):
            p.world.send(p.rank, dest=0, tag=0)
        else:
            p.world.send(p.rank, dest=1, tag=0)

    cfg = DampiConfig(enable_monitor=False)
    rep = DampiVerifier(prog, 6, cfg).verify()
    assert rep.ok
    # rank 0 orders {2,3}: 2 ways; rank 1 orders {4,5}: 2 ways
    assert len(rep.outcomes) == 4
    assert rep.interleavings == 4
