"""Coverage soundness + completeness, checked against brute-force ground truth.

For a family of programs whose feasible match outcomes are enumerable in
closed form — rank 0 posts ``R`` sequential wildcard receives; sender
``s`` fires ``c_s`` independent messages — the exact outcome set is every
length-``R`` source sequence using source ``s`` at most ``c_s`` times
(non-overtaking makes which *message* of a source matched determined by
the count so far, so the source sequence is the whole story).

DAMPI must explore **exactly** that set: anything missing breaks the
paper's completeness claim (§II-E) for non-cross-coupled patterns;
anything extra breaks soundness.  This holds for both clock back-ends
here because the family has no cross-coupled receives (rank 0 is the only
receiver), which is precisely the condition under which the paper argues
Lamport clocks lose nothing.
"""

from __future__ import annotations

from dataclasses import replace
from itertools import product

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier, completed_outcome
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.matching import IndexedMailBox, LinearMailBox
from repro.mpi.message import Envelope, reset_envelope_ids
from repro.mpi.request import Request, RequestKind, reset_request_ids
from repro.workloads.bugzoo import ZOO

from tests.oracle import ReferenceMatcher
from tests.test_parallel import _report_fingerprint


def funnel_program(p, counts: tuple[int, ...], receives: int):
    """Rank 0 wildcard-receives ``receives`` times; rank ``s`` (1-based)
    sends ``counts[s-1]`` messages."""
    if p.rank == 0:
        for _ in range(receives):
            p.world.recv(source=ANY_SOURCE, tag=0)
    elif p.rank - 1 < len(counts):
        for i in range(counts[p.rank - 1]):
            p.world.send((p.rank, i), dest=0, tag=0)


def expected_outcomes(counts: tuple[int, ...], receives: int) -> set[tuple[int, ...]]:
    """All feasible source sequences for the funnel family."""
    sources = [s + 1 for s in range(len(counts))]
    out = set()
    for seq in product(sources, repeat=receives):
        if all(seq.count(s + 1) <= counts[s] for s in range(len(counts))):
            out.add(seq)
    return out


def observed_outcomes(report) -> set[tuple[int, ...]]:
    """Per-run match sequences of rank 0's epochs, ordered by clock."""
    out = set()
    for run in report.runs:
        pairs = sorted((key, src) for (key, src) in run.outcome if key[0] == 0)
        out.add(tuple(src for _, src in pairs))
    return out


counts_strategy = st.lists(
    st.integers(min_value=0, max_value=2), min_size=2, max_size=3
).map(tuple)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(counts=counts_strategy, receives=st.integers(min_value=1, max_value=3))
@pytest.mark.parametrize("clock_impl", ["lamport", "vector"])
def test_funnel_coverage_is_exact(clock_impl, counts, receives):
    total = sum(counts)
    if receives > total:
        # every interleaving deadlocks; covered by the dedicated test below
        receives = max(1, total)
    if total == 0:
        return
    cfg = DampiConfig(clock_impl=clock_impl, enable_monitor=False)
    rep = DampiVerifier(
        funnel_program, len(counts) + 1, cfg, kwargs={"counts": counts, "receives": receives}
    ).verify()
    assert rep.ok, rep.summary()
    expected = expected_outcomes(counts, receives)
    assert observed_outcomes(rep) == expected
    # optimality: the walk never repeats an outcome on this family
    assert rep.interleavings == len(expected)


def test_starved_funnel_deadlocks_in_every_interleaving():
    cfg = DampiConfig(enable_monitor=False)
    rep = DampiVerifier(
        funnel_program, 3, cfg, kwargs={"counts": (1, 0), "receives": 2}
    ).verify()
    assert rep.deadlocks
    assert all("deadlock" in r.error_kinds for r in rep.runs)


# ---------------------------------------------------------------------------
# Differential matching: indexed vs linear vs independent reference
# ---------------------------------------------------------------------------

#: One mailbox operation: (send?, src/selector draw, tag draw, ctx, pick).
_mailbox_ops = st.lists(
    st.tuples(
        st.booleans(),  # True: an envelope arrives; False: a receive is posted
        st.integers(min_value=0, max_value=3),  # source / source-selector draw
        st.integers(min_value=0, max_value=2),  # tag / tag-selector draw
        st.integers(min_value=0, max_value=1),  # context id
        st.integers(min_value=0, max_value=7),  # wildcard candidate pick
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=150, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=_mailbox_ops)
def test_mailbox_implementations_agree_with_reference(ops):
    """Drive :class:`IndexedMailBox`, :class:`LinearMailBox`, and the
    independent :class:`tests.oracle.ReferenceMatcher` with one random
    operation sequence under the engine's discipline (arrivals complete the
    oldest compatible posted receive or queue; receives consume a
    policy-chosen candidate or post) — every query must agree at every
    step, and the final queue contents must be identical in order."""
    reset_envelope_ids()
    reset_request_ids()
    ref = ReferenceMatcher()
    boxes = (ref, LinearMailBox(0), IndexedMailBox(0))
    seqs: dict = {}
    for is_send, a, b, ctx, pick in ops:
        if is_send:
            src, tag = a % 3, b % 2
            stream = (src, 0, ctx)
            seq = seqs.get(stream, 0)
            seqs[stream] = seq + 1
            env = Envelope(src, 0, ctx, tag, payload=None, seq=seq)
            hits = [box.first_posted_match(env) for box in boxes]
            assert [None if h is None else h.uid for h in hits] == [
                None if hits[0] is None else hits[0].uid
            ] * 3
            if hits[0] is not None:
                for box, hit in zip(boxes, hits):
                    box.remove_posted(hit)
            else:
                for box in boxes:
                    box.add_unexpected(env)
        else:
            sel_src = (0, 1, 2, ANY_SOURCE)[a % 4]
            sel_tag = (0, 1, ANY_TAG)[b % 3]
            cands = [box.candidates_for(ctx, sel_src, sel_tag) for box in boxes]
            uids = [[e.uid for e in c] for c in cands]
            assert uids[1] == uids[0] and uids[2] == uids[0]
            if cands[0]:
                chosen = cands[0][pick % len(cands[0])]
                for box in boxes:
                    box.remove_unexpected(chosen)
            else:
                req = Request(
                    RequestKind.RECV, 0, ctx, posted_src=sel_src, posted_tag=sel_tag
                )
                for box in boxes:
                    box.add_posted(req)
        counts = {box.pending_counts() for box in boxes}
        assert len(counts) == 1
    for box in boxes[1:]:
        assert [e.uid for e in box.unexpected] == [e.uid for e in ref.unexpected]
        assert [r.uid for r in box.posted] == [r.uid for r in ref.posted]


def _trace_fingerprint(trace):
    """Everything one run's trace recorded, down to envelope uids."""
    return (
        tuple(
            (
                e.rank, e.lc, e.index, e.ctx, e.tag, e.kind, e.forced,
                e.matched_source, e.matched_env_uid, e.matched_seq,
            )
            for e in trace.all_epochs()
        ),
        tuple(
            sorted(
                (pm.epoch, pm.source, pm.env_uid, pm.seq, pm.tag)
                for pm in trace.potential_matches
            )
        ),
        tuple(trace.unconsumed_decisions),
        tuple(trace.forced_mismatches),
    )


class TestIndexedMatchingDifferential:
    """Satellite: ``indexed_matching`` must be a pure representation change
    — reports, per-run traces, and outcome fingerprints bit-identical to
    the linear-scan ablation across the whole bug zoo."""

    @pytest.mark.parametrize("entry", ZOO, ids=[e.name for e in ZOO])
    def test_bugzoo_indexed_vs_linear_identical(self, entry):
        cfg = DampiConfig(max_interleavings=40, keep_traces=True)
        indexed = DampiVerifier(entry.program, entry.nprocs, cfg).verify()
        linear = DampiVerifier(
            entry.program, entry.nprocs, replace(cfg, indexed_matching=False)
        ).verify()
        assert _report_fingerprint(indexed) == _report_fingerprint(linear)
        assert len(indexed.traces) == len(linear.traces)
        for ti, tl in zip(indexed.traces, linear.traces):
            assert _trace_fingerprint(ti) == _trace_fingerprint(tl)
            assert completed_outcome(ti) == completed_outcome(tl)


def test_two_receivers_cross_free_still_exact():
    """Two independent funnels (ranks 0 and 1 both receive from disjoint
    sender sets) — outcome space is the product of the two."""

    def prog(p):
        if p.rank == 0:
            for _ in range(2):
                p.world.recv(source=ANY_SOURCE, tag=0)
        elif p.rank == 1:
            for _ in range(2):
                p.world.recv(source=ANY_SOURCE, tag=0)
        elif p.rank in (2, 3):
            p.world.send(p.rank, dest=0, tag=0)
        else:
            p.world.send(p.rank, dest=1, tag=0)

    cfg = DampiConfig(enable_monitor=False)
    rep = DampiVerifier(prog, 6, cfg).verify()
    assert rep.ok
    # rank 0 orders {2,3}: 2 ways; rank 1 orders {4,5}: 2 ways
    assert len(rep.outcomes) == 4
    assert rep.interleavings == 4
