"""Algorithm 1 behaviour: clock updates, epoch recording, late detection."""

import pytest

from repro.clocks.lamport import LamportStamp
from repro.clocks.vector import VectorStamp
from repro.dampi.clock_module import STAMP_MAX, DampiClockModule, _stamp_max
from repro.dampi.decisions import EpochDecisions
from repro.dampi.piggyback import PiggybackModule
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, SUM
from repro.mpi.runtime import run_program


def run_dampi(prog, nprocs, clock_impl="lamport", decisions=None, mechanism="separate", **kw):
    pb = PiggybackModule(mechanism)
    clock = DampiClockModule(pb, clock_impl, decisions)
    res = run_program(prog, nprocs, modules=[clock, pb], **kw)
    return res, res.artifacts.get("dampi")


class TestStampMax:
    def test_lamport(self):
        assert _stamp_max(LamportStamp(3), LamportStamp(5)).time == 5

    def test_vector(self):
        out = _stamp_max(VectorStamp((1, 4)), VectorStamp((3, 2)))
        assert out.components == (3, 4)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            _stamp_max(1, 2)

    def test_op_name(self):
        assert STAMP_MAX.name == "STAMP_MAX"


class TestClockDiscipline:
    def test_only_wildcards_tick(self):
        """Deterministic receives merge but never tick (Algorithm 1)."""

        def prog(p):
            if p.rank == 0:
                p.world.send("a", dest=1)
                p.world.send("b", dest=1)
            else:
                p.world.recv(source=0)
                p.world.recv(source=0)

        res, trace = run_dampi(prog, 2)
        res.raise_any()
        assert trace.wildcard_count == 0

    def test_each_wildcard_gets_unique_lc(self):
        def prog(p):
            if p.rank == 0:
                for _ in range(4):
                    p.world.recv(source=ANY_SOURCE)
            else:
                for i in range(4):
                    p.world.send(i, dest=0)

        res, trace = run_dampi(prog, 2)
        res.raise_any()
        lcs = [e.lc for e in trace.epochs[0]]
        assert lcs == sorted(lcs)
        assert len(set(lcs)) == 4
        assert [e.index for e in trace.epochs[0]] == [0, 1, 2, 3]

    def test_merge_at_wait_propagates_clock(self):
        """Rank 1 ticks (wildcard) then sends to rank 2; rank 2's received
        stamp must carry the tick, proving merge-at-wait happened."""
        seen = {}

        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=1)
            elif p.rank == 1:
                p.world.recv(source=ANY_SOURCE)  # tick -> LC 1
                p.world.send("y", dest=2)
            else:
                p.world.recv(source=1)

        pb = PiggybackModule()
        clock = DampiClockModule(pb)
        res = run_program(prog, 3, modules=[clock, pb])
        res.raise_any()
        assert clock.clock_of(2).time >= 1

    def test_collective_allreduce_merges_max(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=1)
            if p.rank == 1:
                p.world.recv(source=ANY_SOURCE)  # rank 1 ticks
            p.world.barrier()  # everyone should now know LC >= 1

        pb = PiggybackModule()
        clock = DampiClockModule(pb)
        res = run_program(prog, 4, modules=[clock, pb])
        res.raise_any()
        for r in range(4):
            assert clock.clock_of(r).time >= 1

    def test_bcast_spreads_root_clock_only(self):
        """Non-root clock info must NOT flow through a bcast (data flows
        root -> members)."""

        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=2)
            if p.rank == 2:
                p.world.recv(source=ANY_SOURCE)  # rank 2 ticks to 1
            p.world.bcast("payload" if p.rank == 1 else None, root=1)

        pb = PiggybackModule()
        clock = DampiClockModule(pb)
        res = run_program(prog, 3, modules=[clock, pb])
        res.raise_any()
        assert clock.clock_of(0).time == 0  # rank 2's tick must not reach 0
        assert clock.clock_of(2).time == 1

    def test_gather_brings_clocks_to_root(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=2)
            if p.rank == 2:
                p.world.recv(source=ANY_SOURCE)
            p.world.gather(p.rank, root=1)

        pb = PiggybackModule()
        clock = DampiClockModule(pb)
        res = run_program(prog, 3, modules=[clock, pb])
        res.raise_any()
        assert clock.clock_of(1).time >= 1  # root learned rank 2's tick
        assert clock.clock_of(0).time == 0  # non-roots learn nothing


class TestEpochRecords:
    def test_epoch_metadata(self):
        def prog(p):
            if p.rank == 0:
                p.world.recv(source=ANY_SOURCE, tag=9)
            else:
                p.world.send("m", dest=0, tag=9)

        res, trace = run_dampi(prog, 2)
        res.raise_any()
        (e,) = trace.epochs[0]
        assert e.kind == "recv"
        assert e.tag == 9
        assert e.matched_source == 1
        assert e.lc == 0 and e.stamp.time == 1  # post-tick stamp

    def test_probe_epochs_recorded(self):
        def prog(p):
            if p.rank == 0:
                st = p.world.probe(source=ANY_SOURCE)
                p.world.recv(source=st.source, tag=st.tag)
            else:
                p.world.send("m", dest=0)

        res, trace = run_dampi(prog, 2)
        res.raise_any()
        kinds = [e.kind for e in trace.epochs[0]]
        assert kinds == ["probe"]
        assert trace.epochs[0][0].matched_source == 1

    def test_iprobe_only_recorded_when_flag_true(self):
        def prog(p):
            if p.rank == 0:
                # sender is held behind the barrier: this iprobe must miss
                flag, _ = p.world.iprobe(source=ANY_SOURCE)
                assert not flag
                p.world.barrier()
                flag2, st = p.world.iprobe(source=ANY_SOURCE)
                assert flag2
                p.world.recv(source=st.source)
            else:
                p.world.barrier()
                p.world.send("m", dest=0)

        res, trace = run_dampi(prog, 2)
        res.raise_any()
        assert len(trace.epochs[0]) == 1  # only the successful iprobe

    def test_pcontrol_region_flags_no_explore(self):
        def prog(p):
            if p.rank == 0:
                p.pcontrol(1)
                p.world.recv(source=ANY_SOURCE)
                p.pcontrol(0)
                p.world.recv(source=ANY_SOURCE)
            else:
                p.world.send(1, dest=0)
                p.world.send(2, dest=0)

        res, trace = run_dampi(prog, 3)
        res.raise_any()
        flags = [e.explore for e in trace.epochs[0]]
        assert flags == [False, True]

    def test_unbalanced_pcontrol_raises(self):
        def prog(p):
            p.pcontrol(0)

        res, _ = run_dampi(prog, 1)
        assert any(isinstance(e, ValueError) for e in res.primary_errors.values())


class TestLateDetection:
    def test_unreceived_impinging_send_found_at_finalize(self):
        """Fig. 3's core mechanism: the never-received send is drained and
        analyzed at MPI_Finalize."""
        from repro.workloads.patterns import fig3_program

        res, trace = run_dampi(fig3_program, 3)
        res.raise_any()
        from repro.dampi.matcher import compute_alternatives

        alts = compute_alternatives(trace)
        (key,) = [e.key for e in trace.epochs[1]]
        assert set(alts[key]) == {2}

    def test_received_late_send_found(self):
        """A late message consumed by a later deterministic receive is a
        potential match for the earlier wildcard."""

        def prog(p):
            if p.rank == 0:
                p.world.recv(source=ANY_SOURCE, tag=1)  # matches rank 1
                p.world.recv(source=2, tag=1)  # consumes rank 2's late send
            elif p.rank == 1:
                p.world.send("fast", dest=0, tag=1)
            else:
                p.world.send("late", dest=0, tag=1)

        res, trace = run_dampi(prog, 3)
        res.raise_any()
        from repro.dampi.matcher import compute_alternatives

        alts = compute_alternatives(trace)
        (e,) = trace.epochs[0]
        assert set(alts[e.key]) == {2}

    def test_causally_after_send_excluded(self):
        """A send that reacts to the wildcard's own completion can never be
        an alternative (it is causally after the epoch)."""

        def prog(p):
            if p.rank == 0:
                p.world.recv(source=ANY_SOURCE, tag=1)
                p.world.send("go", dest=2, tag=2)  # carries the tick
                p.world.recv(source=2, tag=1)
            elif p.rank == 1:
                p.world.send("first", dest=0, tag=1)
            else:
                p.world.recv(source=0, tag=2)
                p.world.send("reaction", dest=0, tag=1)

        res, trace = run_dampi(prog, 3)
        res.raise_any()
        from repro.dampi.matcher import compute_alternatives

        alts = compute_alternatives(trace)
        (e,) = trace.epochs[0]
        assert alts[e.key] == {}

    def test_tag_mismatch_not_alternative(self):
        def prog(p):
            if p.rank == 0:
                p.world.recv(source=ANY_SOURCE, tag=1)
                p.world.recv(source=2, tag=7)
            elif p.rank == 1:
                p.world.send("m", dest=0, tag=1)
            else:
                p.world.send("other-tag", dest=0, tag=7)

        res, trace = run_dampi(prog, 3)
        res.raise_any()
        from repro.dampi.matcher import compute_alternatives

        alts = compute_alternatives(trace)
        (e,) = trace.epochs[0]
        assert alts[e.key] == {}


class TestGuidedMode:
    def test_forced_source_enforced(self):
        decisions = EpochDecisions(forced={(1, 0): 2}, flip=(1, 0))

        def prog(p):
            if p.rank == 1:
                got = p.world.recv(source=ANY_SOURCE)
                return got
            else:
                p.world.send(f"from{p.rank}", dest=1)

        res, trace = run_dampi(prog, 3, decisions=decisions)
        res.raise_any()
        assert res.returns[1] == "from2"
        (e,) = trace.epochs[1]
        assert e.forced and e.matched_source == 2

    def test_self_run_resumes_after_guided_epoch(self):
        decisions = EpochDecisions(forced={(0, 0): 2}, flip=(0, 0))

        def prog(p):
            if p.rank == 0:
                a = p.world.recv(source=ANY_SOURCE)  # forced to 2
                b = p.world.recv(source=ANY_SOURCE)  # self-run
                return (a, b)
            p.world.send(p.rank, dest=0)

        res, trace = run_dampi(prog, 3, decisions=decisions)
        res.raise_any()
        assert res.returns[0] == (2, 1)
        forced_flags = [e.forced for e in trace.epochs[0]]
        assert forced_flags == [True, False]

    def test_unconsumed_decision_reported(self):
        decisions = EpochDecisions(forced={(0, 5): 1}, flip=(0, 5))

        def prog(p):
            if p.rank == 0:
                p.world.recv(source=ANY_SOURCE)  # lc 0, not 5
            else:
                p.world.send("m", dest=0)

        res, trace = run_dampi(prog, 2, decisions=decisions)
        res.raise_any()
        assert trace.unconsumed_decisions == [(0, 5)]
        assert trace.diverged
