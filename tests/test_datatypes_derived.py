"""Derived datatypes: constructors, size/extent, pack/unpack."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mpi.datatypes import BYTE, DOUBLE, Datatype, INT


class TestConstructors:
    def test_contiguous(self):
        t = INT.contiguous(5)
        assert t.size == 20 and t.extent == 20
        assert not t.is_derived or t.blocks == ((0, 20),)

    def test_vector_has_holes(self):
        # 3 blocks of 2 ints, stride 4 ints: |XX..XX..XX|
        t = INT.vector(3, 2, 4)
        assert t.size == 3 * 2 * 4
        assert t.extent == ((3 - 1) * 4 + 2) * 4
        assert t.size < t.extent

    def test_vector_dense_when_stride_equals_blocklength(self):
        t = DOUBLE.vector(4, 2, 2)
        assert t.size == t.extent == 64
        assert t.blocks == ((0, 64),)  # coalesced into one run

    def test_indexed(self):
        t = INT.indexed([2, 1], [0, 5])
        assert t.size == 12
        assert t.extent == 24  # (5 + 1) * 4

    def test_struct(self):
        t = Datatype.struct([(INT, 0), (DOUBLE, 8)])
        assert t.size == 12
        assert t.extent == 16

    def test_nested_derived(self):
        row = INT.contiguous(4)
        grid_col = row.vector(2, 1, 2)  # two rows, skip one between
        assert grid_col.size == 32
        assert grid_col.extent == 3 * 16 - 16 + 16

    def test_validation(self):
        with pytest.raises(ValueError):
            INT.contiguous(0)
        with pytest.raises(ValueError):
            INT.vector(2, 3, 2)  # stride < blocklength
        with pytest.raises(ValueError):
            INT.indexed([1], [0, 1])
        with pytest.raises(ValueError):
            Datatype.struct([])

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            INT.indexed([2, 2], [0, 1])


class TestPackUnpack:
    def test_vector_roundtrip(self):
        t = BYTE.vector(3, 2, 4)  # |XX..XX..XX|
        buf = np.arange(t.extent, dtype=np.uint8)
        packed = t.pack(buf)
        assert packed.tolist() == [0, 1, 4, 5, 8, 9]
        out = np.zeros(t.extent, dtype=np.uint8)
        t.unpack(packed, out)
        assert out[[0, 1, 4, 5, 8, 9]].tolist() == [0, 1, 4, 5, 8, 9]
        assert out[[2, 3, 6, 7]].tolist() == [0, 0, 0, 0]  # holes untouched

    def test_pack_needs_full_extent(self):
        t = BYTE.vector(2, 1, 3)
        with pytest.raises(ValueError):
            t.pack(np.zeros(2, dtype=np.uint8))

    def test_unpack_size_checked(self):
        t = BYTE.contiguous(4)
        with pytest.raises(ValueError):
            t.unpack(np.zeros(3, dtype=np.uint8), np.zeros(4, dtype=np.uint8))

    @given(
        count=st.integers(min_value=1, max_value=5),
        blocklength=st.integers(min_value=1, max_value=4),
        gap=st.integers(min_value=0, max_value=3),
    )
    def test_pack_unpack_identity_property(self, count, blocklength, gap):
        t = BYTE.vector(count, blocklength, blocklength + gap)
        rng = np.random.default_rng(1)
        buf = rng.integers(0, 255, size=t.extent, dtype=np.uint8)
        out = np.zeros(t.extent, dtype=np.uint8)
        t.unpack(t.pack(buf), out)
        # significant bytes survive the roundtrip
        assert np.array_equal(t.pack(out), t.pack(buf))
        assert t.size == count * blocklength

    def test_halo_column_extraction(self):
        """The use case: extract a column (stride = row length) from a
        row-major grid — MPI_Type_vector's reason to exist."""
        rows, cols = 4, 6
        grid = np.arange(rows * cols, dtype=np.uint8).reshape(rows, cols)
        column_type = BYTE.vector(rows, 1, cols)
        packed = column_type.pack(grid.reshape(-1)[2:])  # column 2
        assert packed.tolist() == grid[:, 2].tolist()


class TestSizeVsExtentSemantics:
    def test_wire_size_uses_size_not_extent(self):
        """A strided send ships only significant bytes (size), like a real
        MPI implementation packing on the fly."""
        from repro.mpi.datatypes import sizeof

        t = BYTE.vector(10, 1, 100)
        packed = t.pack(np.zeros(t.extent, dtype=np.uint8))
        assert sizeof(packed) == t.size == 10
