"""The distributed verification service: lease partitioning, the wire
protocol, and the end-to-end coordinator/worker bit-identity guarantee.

The headline property mirrors the parallel engine's, one level up: for
any program and any ``--workers`` setting (including the degenerate
1-worker fleet and a fleet larger than the subtree count) the assembled
report is *bit-identical* to the serial ``DampiVerifier.verify`` —
sharding changes who executes a schedule, never which schedules exist.
"""

from __future__ import annotations

import json
from collections import deque

import pytest

from repro.dampi.config import DampiConfig
from repro.dampi.decisions import EpochDecisions
from repro.dampi.explorer import DecisionNode, ScheduleGenerator
from repro.dampi.journal import CampaignJournal, JournalError
from repro.dampi.parallel import schedule_key
from repro.dampi.verifier import DampiVerifier
from repro.dist import (
    DistError,
    distributed_verify,
    journal_status,
    lease_id,
    lease_key,
    lease_root_decisions,
)
from repro.dist.leases import LeaseTable
from repro.dist.protocol import (
    decisions_key_str,
    entry_schedule_key,
    result_from_entry,
    run_entry,
)
from repro.dist.worker import _ShardWorker, shard_config
from repro.obs.metrics import deterministic_view
from repro.workloads.bugzoo import ZOO, buffer_too_small, head_to_head_recv
from repro.workloads.matmult import matmult_program
from repro.workloads.patterns import wildcard_lattice

from tests.test_journal import BIG, LATTICE, _canon
from tests.test_parallel import _report_fingerprint


def _spec(alt, flip_key=(1, 0), prefix=()):
    return {
        "prefix": [list(row) for row in prefix],
        "flip_key": list(flip_key),
        "flip_order": [1, flip_key[0], flip_key[1]],
        "alt": alt,
    }


# -- lease identity and the lease table ---------------------------------------


class TestLeases:
    def test_root_decisions_force_prefix_plus_flip(self):
        spec = _spec(2, flip_key=(0, 1), prefix=[[[0, 0], [1, 0, 0], 0, 0]])
        d = lease_root_decisions(spec)
        assert d.forced == {(0, 0): 0, (0, 1): 2}
        assert d.flip == (0, 1)

    def test_root_decisions_skip_unforced_prefix_rows(self):
        # chosen < 0 marks a prefix node with no forced source (the self
        # run decided); it must not appear in the decision file
        spec = _spec(1, prefix=[[[0, 0], [1, 0, 0], -1, 0]])
        assert (0, 0) not in lease_root_decisions(spec).forced

    def test_lease_id_is_stable_and_discriminates(self):
        a, b = _spec(1), _spec(2)
        assert lease_id(a) == lease_id(a)
        assert len(lease_id(a)) == 12
        assert lease_id(a) != lease_id(b)
        assert lease_key(a) != lease_key(b)

    def test_seed_prefix_agrees_with_lease_root_decisions(self):
        spec = _spec(2, flip_key=(0, 1), prefix=[[[0, 0], [1, 0, 0], 0, 0]])
        gen = ScheduleGenerator()
        seeded = gen.seed_prefix(
            spec["prefix"], spec["flip_key"], spec["flip_order"], spec["alt"]
        )
        root = lease_root_decisions(spec)
        assert schedule_key(seeded) == schedule_key(root)
        assert all(n.pinned for n in gen.path)

    def test_offer_dedups_by_root_schedule(self):
        table = LeaseTable()
        assert table.offer(_spec(1)) is not None
        assert table.offer(_spec(1)) is None  # same subtree root
        assert table.offer(_spec(2)) is not None
        assert table.pending_count == 2

    def test_released_leases_requeue_at_the_front(self):
        table = LeaseTable()
        a = table.offer(_spec(1))
        table.offer(_spec(2))
        c = table.offer(_spec(3))
        assert table.next_pending() is a
        table.assign(a, worker=7)
        assert a.issues == 1 and a.worker == 7
        table.release_worker(7)  # worker died holding `a`
        assert table.next_pending() is a  # ahead of b and c
        table.assign(a, worker=8)
        assert a.issues == 2
        # the rest of the queue is undisturbed
        assert table.next_pending().spec["alt"] == 2
        assert table.next_pending() is c

    def test_complete_is_idempotent_and_drives_all_done(self):
        table = LeaseTable()
        a = table.offer(_spec(1))
        table.assign(table.next_pending(), worker=1)
        assert not table.all_done
        assert table.complete(a.id) is a
        assert table.complete(a.id) is None  # duplicate lease_done frame
        assert table.all_done and table.done_count == 1

    def test_mark_done_replays_journal_state(self):
        table = LeaseTable()
        a = table.offer(_spec(1))
        table.mark_done(a.id)
        assert table.all_done
        assert table.next_pending() is None


# -- generator prefix API ------------------------------------------------------


def _node(key, chosen, alts, **kw):
    return DecisionNode(
        key=key,
        order=(1, key[0], key[1]),
        chosen=chosen,
        tried={chosen},
        alternatives={chosen} | set(alts),
        **kw,
    )


def _synthetic_gen(nodes):
    gen = ScheduleGenerator()
    gen._seeded = True
    gen.path = list(nodes)
    return gen


class TestGeneratorPartitionAPI:
    def test_take_subtree_leases_claims_frontier_deepest_first(self):
        gen = _synthetic_gen(
            [_node((0, 0), 0, {1}), _node((1, 0), 0, {1, 2})]
        )
        leases = gen.take_subtree_leases()
        # deepest node's alternatives first, then the shallow node's
        assert [(tuple(s["flip_key"]), s["alt"]) for s in leases] == [
            ((1, 0), 1),
            ((1, 0), 2),
            ((0, 0), 1),
        ]
        # prefixes stop short of the flipped node; the row's covered set
        # carries everything the master accounts for there
        assert leases[0]["prefix"] == [[[0, 0], [1, 0, 0], 0, False, [0, 1]]]
        assert leases[0]["covered"] == [0, 1, 2]
        assert leases[2]["prefix"] == []
        # everything claimed: the local walk has nothing left
        assert gen.take_subtree_leases() == []
        assert all(not n.untried for n in gen.path)

    def test_take_subtree_leases_skips_frozen_and_pinned(self):
        gen = _synthetic_gen(
            [
                _node((0, 0), 0, {1}, frozen=True),
                _node((1, 0), 0, {1}, pinned=True),
            ]
        )
        assert gen.take_subtree_leases() == []

    def test_split_deepest_never_donates_itself_idle(self):
        gen = _synthetic_gen([_node((0, 0), 0, {1})])
        assert gen.split_deepest() == []  # one alternative total: keep it

    def test_split_deepest_donates_upper_half(self):
        gen = _synthetic_gen([_node((0, 0), 0, {1, 2, 3})])
        donated = gen.split_deepest()
        assert [s["alt"] for s in donated] == [2, 3]
        assert gen.path[0].untried == {1}  # victim keeps the lower half

    def test_pinned_discoveries_reported_exactly_once(self):
        pinned = _node((0, 0), 0, set(), pinned=True)
        gen = _synthetic_gen([pinned])
        pinned.alternatives |= {1, 2}  # as integrate() would discover
        assert gen.take_pinned_discoveries() == [(0, [1, 2])]
        assert gen.take_pinned_discoveries() == []  # marked tried


# -- run entries over the wire -------------------------------------------------


class TestProtocolEntries:
    def test_deadlock_round_trip(self):
        v = DampiVerifier(head_to_head_recv, 2, DampiConfig())
        try:
            result, trace = v.run_once(None)
        finally:
            v.close()
        assert result.deadlocked
        entry = json.loads(json.dumps(run_entry(None, result, trace)))
        rebuilt = result_from_entry(entry)
        assert rebuilt.deadlocked
        assert rebuilt.deadlock.blocked == result.deadlock.blocked
        assert str(rebuilt.deadlock) == str(result.deadlock)
        assert entry_schedule_key(entry) is None  # self run

    def test_error_rows_round_trip_names_and_messages(self):
        v = DampiVerifier(buffer_too_small, 2, DampiConfig())
        try:
            result, trace = v.run_once(None)
        finally:
            v.close()
        assert result.primary_errors
        entry = json.loads(json.dumps(run_entry(None, result, trace)))
        rebuilt = result_from_entry(entry)
        assert set(rebuilt.primary_errors) == set(result.primary_errors)
        for rank, exc in result.primary_errors.items():
            remote = rebuilt.primary_errors[rank]
            assert type(remote).__name__ == type(exc).__name__
            assert str(remote) == str(exc)
        # rebuilt exception classes are cached: equal names, same type
        again = result_from_entry(entry)
        rank = next(iter(rebuilt.primary_errors))
        assert type(again.primary_errors[rank]) is type(
            rebuilt.primary_errors[rank]
        )

    def test_entry_schedule_key_matches_canonical_key(self):
        d = EpochDecisions(forced={(0, 1): 2}, flip=(0, 1))
        v = DampiVerifier(wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE)
        try:
            _res, trace = v.run_once(None)
            gen = ScheduleGenerator()
            gen.seed(trace)
            decisions = gen.next_decisions()
            result, rtrace = v.run_once(decisions)
        finally:
            v.close()
        entry = json.loads(json.dumps(run_entry(decisions, result, rtrace)))
        assert entry_schedule_key(entry) == schedule_key(decisions)
        assert decisions_key_str(decisions) == decisions_key_str(decisions)
        assert decisions_key_str(decisions) != decisions_key_str(d)


# -- the partition property ----------------------------------------------------


def _serial_schedule_keys(entry_program, nprocs, cfg, kwargs=None):
    """The schedules the serial DFS executes, in order."""
    v = DampiVerifier(entry_program, nprocs, cfg, kwargs=kwargs)
    keys = []
    try:
        _res, trace = v.run_once(None)
        gen = ScheduleGenerator(
            bound_k=cfg.bound_k, auto_loop_threshold=cfg.auto_loop_threshold
        )
        gen.seed(trace)
        decisions = gen.next_decisions()
        while decisions is not None:
            keys.append(schedule_key(decisions))
            _res, trace = v.run_once(decisions)
            gen.integrate(trace)
            decisions = gen.next_decisions()
    finally:
        v.close()
    return keys


def _partitioned_schedule_keys(entry_program, nprocs, cfg, depth, kwargs=None,
                               steal=False):
    """The schedules a distributed campaign executes, reproduced
    in-process: partition the self run's frontier into leases, explore
    each leased subtree with a prefix-seeded generator, route pinned
    discoveries (and, at ``depth > 1``, re-partitions of the subtree's
    own frontier — or ``split_deepest`` donations when ``steal``) back
    through the coordinator-side dedup."""
    v = DampiVerifier(entry_program, nprocs, cfg, kwargs=kwargs)
    keys = []
    try:
        _res, trace = v.run_once(None)
        master = ScheduleGenerator(
            bound_k=cfg.bound_k, auto_loop_threshold=cfg.auto_loop_threshold
        )
        master.seed(trace)
        seen, pending = set(), deque()

        def offer(spec):
            k = lease_key(spec)
            if k not in seen:
                seen.add(k)
                pending.append(spec)

        for spec in master.take_subtree_leases():
            offer(spec)
        while pending:
            spec = pending.popleft()
            gen = ScheduleGenerator(
                bound_k=cfg.bound_k, auto_loop_threshold=cfg.auto_loop_threshold
            )
            decisions = gen.seed_prefix(
                spec["prefix"],
                spec["flip_key"],
                spec["flip_order"],
                spec["alt"],
                covered=spec.get("covered", ()),
            )
            splits = depth - 1
            while decisions is not None:
                keys.append(schedule_key(decisions))
                _res, trace = v.run_once(decisions)
                gen.integrate(trace)
                for s in _ShardWorker._discovery_specs(
                    gen, gen.take_pinned_discoveries()
                ):
                    offer(s)
                if splits > 0:
                    donated = (
                        gen.split_deepest() if steal else gen.take_subtree_leases()
                    )
                    for s in donated:
                        offer(s)
                    splits -= 1
                decisions = gen.next_decisions()
    finally:
        v.close()
    return keys


class TestPartitionProperty:
    """Satellite: the union of runs produced by exploring any prefix
    partition of the decision tree equals the serial enumeration — no
    schedule lost, none duplicated — at every re-partitioning depth."""

    @pytest.mark.parametrize("entry", ZOO, ids=[e.name for e in ZOO])
    def test_bugzoo_partitions_cover_exactly(self, entry):
        cfg = DampiConfig()
        serial = sorted(_serial_schedule_keys(entry.program, entry.nprocs, cfg))
        for depth in (1, 2, 3):
            part = _partitioned_schedule_keys(
                entry.program, entry.nprocs, cfg, depth
            )
            assert len(part) == len(set(part)), (entry.name, depth)
            assert sorted(part) == serial, (entry.name, depth)

    @pytest.mark.parametrize("kwargs", [LATTICE, BIG], ids=["lattice", "big"])
    def test_stealing_partitions_cover_exactly(self, kwargs):
        nprocs = 3 if kwargs is LATTICE else 4
        cfg = DampiConfig()
        serial = sorted(
            _serial_schedule_keys(wildcard_lattice, nprocs, cfg, kwargs=kwargs)
        )
        for depth in (2, 3):
            part = _partitioned_schedule_keys(
                wildcard_lattice, nprocs, cfg, depth, kwargs=kwargs, steal=True
            )
            assert len(part) == len(set(part))
            assert sorted(part) == serial

    def test_bounded_walks_partition_too(self):
        cfg = DampiConfig(bound_k=1)
        serial = sorted(
            _serial_schedule_keys(wildcard_lattice, 4, cfg, kwargs=BIG)
        )
        part = _partitioned_schedule_keys(
            wildcard_lattice, 4, cfg, 2, kwargs=BIG
        )
        assert sorted(part) == serial


# -- end to end over TCP -------------------------------------------------------


def _exec_totals(report):
    counters = report.telemetry["metrics"]["counters"]
    return {k: v for k, v in counters.items() if k.startswith("exec.")}


class TestDistributedBitIdentity:
    """THE acceptance property: ``repro dist run --workers N`` must match
    the serial walk bit for bit."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_lattice_identical_across_fleets(self, workers):
        cfg = DampiConfig()
        serial = DampiVerifier(
            wildcard_lattice, 4, cfg, kwargs=BIG
        ).verify()
        dist = distributed_verify(
            wildcard_lattice, 4, cfg, workers=workers, kwargs=BIG
        )
        assert _canon(dist) == _canon(serial)
        assert _report_fingerprint(dist) == _report_fingerprint(serial)
        assert deterministic_view(dist.telemetry["metrics"]) == deterministic_view(
            serial.telemetry["metrics"]
        )
        assert dist.parallel_stats["mode"] == "dist"
        assert dist.parallel_stats["workers"] == workers
        assert dist.parallel_stats["worker_deaths"] == 0

    def test_more_workers_than_subtrees(self):
        # 4 interleavings / 3 leases with an 8-worker fleet: the surplus
        # workers idle politely and the report is still exact
        cfg = DampiConfig()
        serial = DampiVerifier(
            wildcard_lattice, 3, cfg, kwargs=LATTICE
        ).verify()
        dist = distributed_verify(
            wildcard_lattice, 3, cfg, workers=8, kwargs=LATTICE
        )
        assert _canon(dist) == _canon(serial)

    def test_exec_totals_are_worker_count_independent(self):
        cfg = DampiConfig()
        totals = [
            _exec_totals(
                distributed_verify(
                    wildcard_lattice, 3, cfg, workers=w, kwargs=LATTICE
                )
            )
            for w in (1, 2, 4)
        ]
        assert totals[0] == totals[1] == totals[2]
        assert totals[0]["exec.replays"] > 0

    @pytest.mark.parametrize("entry", ZOO, ids=[e.name for e in ZOO])
    def test_bugzoo_identical(self, entry):
        cfg = DampiConfig()
        serial = DampiVerifier(entry.program, entry.nprocs, cfg).verify()
        dist = distributed_verify(entry.program, entry.nprocs, cfg, workers=2)
        assert _canon(dist) == _canon(serial)
        assert _report_fingerprint(dist) == _report_fingerprint(serial)

    def test_budget_truncation_identical(self):
        cfg = DampiConfig(max_interleavings=7)
        serial = DampiVerifier(
            wildcard_lattice, 4, cfg, kwargs=BIG
        ).verify()
        dist = distributed_verify(
            wildcard_lattice, 4, cfg, workers=2, kwargs=BIG
        )
        assert serial.truncated and dist.truncated
        assert _canon(dist) == _canon(serial)

    def test_outcome_dedup_applied_in_assembly(self):
        cfg = DampiConfig(outcome_dedup=True)
        serial = DampiVerifier(
            wildcard_lattice, 4, cfg, kwargs=BIG
        ).verify()
        dist = distributed_verify(
            wildcard_lattice, 4, cfg, workers=2, kwargs=BIG
        )
        assert _canon(dist) == _canon(serial)

    def test_matmult_identical(self):
        cfg = DampiConfig()
        serial = DampiVerifier(matmult_program, 3, cfg).verify()
        dist = distributed_verify(matmult_program, 3, cfg, workers=3)
        assert _canon(dist) == _canon(serial)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            distributed_verify(wildcard_lattice, 3, DampiConfig(), workers=0)


class TestDistributedJournal:
    def test_journal_resume_replays_without_reexecution(self, tmp_path):
        cfg = DampiConfig()
        jdir = tmp_path / "dist-j"
        first = distributed_verify(
            wildcard_lattice, 3, cfg, workers=2, kwargs=LATTICE,
            journal=jdir,
        )
        status = journal_status(jdir)
        assert status["mode"] == "dist" and status["complete"]
        assert status["leases_open"] == 0
        assert status["records"] == first.journal_stats["executed"]
        resumed = distributed_verify(
            wildcard_lattice, 3, cfg, workers=2, kwargs=LATTICE,
            journal=jdir,
        )
        assert _canon(resumed) == _canon(first)
        assert resumed.journal_stats["executed"] == 0
        assert resumed.journal_stats["replayed"] == first.journal_stats["executed"]

    def test_serial_resume_refuses_dist_journal(self, tmp_path):
        jdir = tmp_path / "dist-j"
        distributed_verify(
            wildcard_lattice, 3, DampiConfig(), workers=1, kwargs=LATTICE,
            journal=jdir,
        )
        with pytest.raises(JournalError, match="dist"):
            DampiVerifier(
                wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
            ).verify(journal=jdir)

    def test_serial_resume_refuses_shard_journal(self, tmp_path):
        """Satellite: pointing plain resume at a worker's shard journal
        must fail loudly, not silently verify a subtree."""
        jdir = tmp_path / "dist-j"
        distributed_verify(
            wildcard_lattice, 3, DampiConfig(), workers=2, kwargs=LATTICE,
            journal=jdir,
        )
        shards = sorted((jdir / "shards").glob("lease-*"))
        assert shards, "campaign left no shard journals"
        with pytest.raises(JournalError, match="shard"):
            DampiVerifier(
                wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
            ).verify(journal=shards[0])

    def test_dist_resume_refuses_campaign_journal(self, tmp_path):
        jdir = tmp_path / "serial-j"
        DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
        ).verify(journal=jdir)
        with pytest.raises(JournalError, match="campaign"):
            distributed_verify(
                wildcard_lattice, 3, DampiConfig(), workers=2, kwargs=LATTICE,
                journal=jdir,
            )

    def test_shard_journal_signature_pins_prefix(self, tmp_path):
        jdir = tmp_path / "dist-j"
        distributed_verify(
            wildcard_lattice, 3, DampiConfig(), workers=2, kwargs=LATTICE,
            journal=jdir,
        )
        shard = sorted((jdir / "shards").glob("lease-*"))[0]
        j = CampaignJournal(shard)
        sig = j.meta["signature"]
        j.close()
        assert sig["journal_mode"] == "shard"
        assert "shard_prefix" in sig
        # the directory name is the lease id of the pinned prefix
        assert shard.name == f"lease-{lease_id(sig['shard_prefix'])}"


class TestShardConfig:
    def test_execution_knobs_normalized_semantics_kept(self):
        cfg = DampiConfig(
            jobs=4, outcome_dedup=True, max_interleavings=9, bound_k=2,
            trace_events=True, progress_interval_seconds=1.0,
        )
        sc = shard_config(cfg)
        assert sc.jobs == 1 and not sc.outcome_dedup
        assert sc.max_interleavings is None and sc.max_seconds is None
        assert not sc.trace_events and sc.progress_interval_seconds is None
        assert sc.bound_k == 2  # semantic knobs untouched
        assert sc.clock_impl == cfg.clock_impl
