"""The distributed fault matrix: workers and the coordinator die at
exit-43 fault sites (and hang past the lease timeout) and the campaign
still converges to the serial report, bit for bit.

Same recipe as :mod:`tests.test_journal`: deterministic ``kill@…`` sites
from :mod:`repro.dampi.faults`, coordinator deaths exercised in a forked
child so the parent can assert the exit code and then resume the journal.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.dampi.config import DampiConfig
from repro.dampi.faults import FAULT_EXIT_CODE
from repro.dampi.verifier import DampiVerifier
from repro.dist import DistError, distributed_verify, journal_status
from repro.workloads.patterns import wildcard_lattice

from tests.test_journal import BIG, LATTICE, _canon


def _oracle(nprocs=4, kwargs=BIG, **cfg):
    return DampiVerifier(
        wildcard_lattice, nprocs, DampiConfig(**cfg), kwargs=dict(kwargs)
    ).verify()


def _dist(fault_plan=None, nprocs=4, kwargs=BIG, workers=2, journal=None, **cfg):
    return distributed_verify(
        wildcard_lattice,
        nprocs,
        DampiConfig(fault_plan=fault_plan, **cfg),
        workers=workers,
        kwargs=dict(kwargs),
        journal=journal,
    )


def _dist_child(journal_dir, fault_plan, nprocs, kwargs, workers):
    """Child-process body: a journaled distributed campaign that a
    ``kill@coord:n`` fault is expected to take down."""
    _dist(
        fault_plan=fault_plan,
        nprocs=nprocs,
        kwargs=kwargs,
        workers=workers,
        journal=journal_dir,
    )
    os._exit(0)  # reached only if the plan never killed us


def _crash_coordinator(journal_dir, fault_plan, nprocs=4, kwargs=BIG, workers=2):
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(
        target=_dist_child,
        args=(str(journal_dir), fault_plan, nprocs, dict(kwargs), workers),
    )
    proc.start()
    proc.join(120)
    assert proc.exitcode == FAULT_EXIT_CODE, proc.exitcode


class TestWorkerDeath:
    def test_kill_mid_lease_report_identical(self, tmp_path):
        """A worker dies before its 2nd replay; the coordinator re-issues
        the lease (shard journal replays the finished run) and the final
        report matches the serial oracle exactly."""
        oracle = _oracle()
        report = _dist(
            fault_plan="kill@worker:2.2", journal=tmp_path / "j"
        )
        assert _canon(report) == _canon(oracle)
        assert report.parallel_stats["worker_deaths"] == 1
        assert report.telemetry["metrics"]["counters"]["dist.leases_reissued"] >= 1

    def test_kill_without_journal_still_identical(self):
        """No journal: the re-issued lease simply re-executes from its
        root.  Slower, never wrong."""
        oracle = _oracle()
        report = _dist(fault_plan="kill@worker:1.1")
        assert _canon(report) == _canon(oracle)
        assert report.parallel_stats["worker_deaths"] == 1

    def test_every_initial_worker_killed_once(self, tmp_path):
        """The whole starting fleet dies; replacements (fresh ids, so the
        one-shot kills do not re-fire) finish the campaign."""
        oracle = _oracle()
        report = _dist(
            fault_plan="kill@worker:1.1,kill@worker:2.1",
            journal=tmp_path / "j",
        )
        assert _canon(report) == _canon(oracle)
        assert report.parallel_stats["worker_deaths"] == 2

    def test_hung_worker_expires_by_progress_not_heartbeat(self):
        """A worker that hangs mid-replay keeps heartbeating (the hb
        thread is separate) — only the *progress*-based expiry can catch
        it.  The coordinator must terminate it and re-issue the lease."""
        oracle = _oracle(nprocs=3, kwargs=LATTICE)
        report = _dist(
            fault_plan="hang@worker:1.1:600",
            nprocs=3,
            kwargs=LATTICE,
            dist_heartbeat_seconds=0.1,
            dist_lease_timeout_seconds=1.0,
        )
        assert _canon(report) == _canon(oracle)
        assert report.parallel_stats["worker_deaths"] >= 1
        counters = report.telemetry["metrics"]["counters"]
        assert counters.get("dist.leases_expired", 0) >= 1

    def test_deterministic_crasher_exhausts_reissues(self, tmp_path):
        """A lease whose subtree kills *any* worker that touches it must
        not be re-issued forever: after MAX_LEASE_ISSUES the campaign
        fails loudly instead of spinning."""
        plan = ",".join(f"kill@worker:{i}.1" for i in range(1, 9))
        with pytest.raises(DistError, match="failed"):
            _dist(fault_plan=plan, workers=1, journal=tmp_path / "j")


class TestCoordinatorDeath:
    def test_kill_mid_campaign_then_resume_is_bit_identical(self, tmp_path):
        """THE distributed acceptance test: SIGKILL-equivalent death of
        the coordinator before it journals the 4th streamed record, then
        ``repro dist resume`` — the assembled report is bit-identical to
        an uninterrupted serial run, re-executing only uncovered work."""
        oracle = _oracle()
        jdir = tmp_path / "j"
        _crash_coordinator(jdir, "kill@coord:4")
        status = journal_status(jdir)
        assert not status["complete"]
        assert status["records"] == 3  # journaled-before-dispatch held
        resumed = _dist(journal=jdir)
        assert _canon(resumed) == _canon(oracle)
        assert resumed.journal_stats["replayed"] == 3
        assert resumed.journal_stats["executed"] > 0
        assert journal_status(jdir)["complete"]

    def test_kill_before_first_record(self, tmp_path):
        """Death with leases journaled but zero records: resume restarts
        every lease from scratch."""
        oracle = _oracle()
        jdir = tmp_path / "j"
        _crash_coordinator(jdir, "kill@coord:1")
        assert journal_status(jdir)["records"] == 0
        resumed = _dist(journal=jdir)
        assert _canon(resumed) == _canon(oracle)

    def test_double_crash_then_resume(self, tmp_path):
        """Crash, resume into another crash, resume again — the journal
        only ever moves forward."""
        oracle = _oracle()
        jdir = tmp_path / "j"
        _crash_coordinator(jdir, "kill@coord:2")
        _crash_coordinator(jdir, "kill@coord:6")
        first = journal_status(jdir)["records"]
        assert first >= 5  # second crash got further on replayed records
        resumed = _dist(journal=jdir)
        assert _canon(resumed) == _canon(oracle)

    def test_worker_and_coordinator_both_die(self, tmp_path):
        """The full matrix cell: a worker is killed mid-lease AND the
        coordinator dies later in the same campaign; one resume still
        converges to the oracle."""
        oracle = _oracle()
        jdir = tmp_path / "j"
        _crash_coordinator(jdir, "kill@worker:2.1,kill@coord:8")
        resumed = _dist(journal=jdir)
        assert _canon(resumed) == _canon(oracle)

    def test_resume_of_complete_journal_executes_nothing(self, tmp_path):
        jdir = tmp_path / "j"
        first = _dist(journal=jdir)
        again = _dist(journal=jdir)
        assert _canon(again) == _canon(first)
        assert again.journal_stats["executed"] == 0


class TestCliRefusals:
    def test_plain_resume_refuses_shard_journal(self, tmp_path):
        from repro.cli import main

        jdir = tmp_path / "j"
        _dist(nprocs=3, kwargs=LATTICE, journal=jdir)
        shard = sorted((jdir / "shards").glob("lease-*"))[0]
        with pytest.raises(SystemExit, match="shard journal"):
            main(["resume", str(shard)])

    def test_plain_resume_refuses_coordinator_journal(self, tmp_path):
        from repro.cli import main

        jdir = tmp_path / "j"
        _dist(nprocs=3, kwargs=LATTICE, journal=jdir)
        with pytest.raises(SystemExit, match="dist resume"):
            main(["resume", str(jdir)])
