"""The §V dual-clock extension: uncommitted epoch ticks never transmit."""

import pytest

from repro.clocks.dual import DualClock
from repro.clocks.lamport import LamportStamp
from repro.clocks.vector import VectorStamp
from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier
from repro.workloads.patterns import (
    fig3_program,
    fig4_program,
    fig10_program,
    wildcard_lattice,
)


class TestDualClockUnit:
    def test_tick_stays_local_until_commit(self):
        c = DualClock("lamport", 0, 4)
        c.tick()
        assert c.time == 1  # epoch view advanced
        assert c.snapshot().time == 0  # transmit view unchanged
        c.commit_epoch(0)
        assert c.snapshot().time == 1

    def test_merge_reaches_both(self):
        c = DualClock("lamport", 0, 4)
        c.merge(LamportStamp(5))
        assert c.time == 5 and c.snapshot().time == 5

    def test_vector_commit_raises_own_component_only(self):
        c = DualClock("vector", 1, 3)
        c.tick()
        c.tick()
        assert c.snapshot().components == (0, 0, 0)
        c.commit_epoch(0)  # commit the first epoch only
        assert c.snapshot().components == (0, 1, 0)
        c.commit_epoch(1)
        assert c.snapshot().components == (0, 2, 0)

    def test_epoch_snapshot_is_main_view(self):
        c = DualClock("lamport", 0, 2)
        c.tick()
        assert c.epoch_snapshot().time == 1
        assert c.snapshot().time == 0

    def test_bad_impl_rejected(self):
        with pytest.raises(ValueError):
            DualClock("lamport_dual", 0, 2)

    def test_factory(self):
        from repro.clocks.base import make_clock

        assert isinstance(make_clock("lamport_dual", 0, 2), DualClock)
        assert isinstance(make_clock("vector_dual", 1, 4), DualClock)


class TestFig10Closed:
    def test_plain_lamport_misses_the_bug(self):
        rep = DampiVerifier(fig10_program, 3, DampiConfig(clock_impl="lamport")).verify()
        assert rep.interleavings == 1
        assert not any(e.kind == "crash" for e in rep.errors)
        assert rep.monitor_report.triggered  # only the alert fires

    @pytest.mark.parametrize("impl", ["lamport_dual", "vector_dual"])
    def test_dual_clocks_find_the_bug(self, impl):
        rep = DampiVerifier(fig10_program, 3, DampiConfig(clock_impl=impl)).verify()
        assert rep.interleavings == 2
        assert any(e.kind == "crash" for e in rep.errors), rep.summary()


class TestDualRegression:
    """Dual clocks must preserve coverage everywhere else."""

    def test_fig3_still_found(self):
        rep = DampiVerifier(fig3_program, 3, DampiConfig(clock_impl="lamport_dual")).verify()
        assert any(e.kind == "crash" for e in rep.errors)

    def test_lattice_coverage_exact(self):
        rep = DampiVerifier(
            wildcard_lattice,
            4,
            DampiConfig(clock_impl="lamport_dual"),
            kwargs={"receives": 3, "senders": 3},
        ).verify()
        assert rep.interleavings == 27
        assert len(rep.outcomes) == 27

    def test_vector_dual_complete_on_fig4(self):
        rep = DampiVerifier(fig4_program, 4, DampiConfig(clock_impl="vector_dual")).verify()
        assert rep.interleavings == 3  # as precise as plain vector

    def test_lamport_dual_coverage_superset_of_lamport(self):
        for prog, n, kw in (
            (fig10_program, 3, {}),
            (wildcard_lattice, 3, {"receives": 2, "senders": 2}),
        ):
            plain = DampiVerifier(prog, n, DampiConfig(clock_impl="lamport"), kwargs=kw).verify()
            dual = DampiVerifier(
                prog, n, DampiConfig(clock_impl="lamport_dual"), kwargs=kw
            ).verify()
            assert plain.outcomes <= dual.outcomes
