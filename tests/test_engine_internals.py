"""Engine internals: scheduling modes, virtual time, datatypes, cost model."""

import pytest

from repro.mpi.costmodel import CostModel, SerializedResource, VirtualClocks
from repro.mpi.datatypes import count_of, sizeof
from repro.mpi.engine import MessageEngine
from repro.mpi.matching import (
    ArrivalPolicy,
    HighestRankPolicy,
    LowestRankPolicy,
    SeededRandomPolicy,
    make_policy,
)
from repro.mpi.message import Envelope
from repro.mpi.runtime import Runtime, run_program

from tests.conftest import run_ok

import numpy as np


class TestDatatypes:
    def test_count_of(self):
        assert count_of([1, 2, 3]) == 3
        assert count_of("abcd") == 4
        assert count_of(b"xy") == 2
        assert count_of(42) == 1
        assert count_of(np.zeros((2, 5))) == 10

    def test_sizeof(self):
        assert sizeof(np.zeros(10)) == 80
        assert sizeof(b"12345") == 5
        assert sizeof("ab") == 2
        assert sizeof(3.14) == 8
        assert sizeof(object()) == 64  # opaque fallback
        assert sizeof([1] * 10) == 88


class TestCostModel:
    def test_send_cost_scales_with_bytes(self):
        cm = CostModel()
        assert cm.send_cost(10**6) > cm.send_cost(10) * 100

    def test_collective_cost_logarithmic(self):
        cm = CostModel()
        c2, c1024 = cm.collective_cost(2), cm.collective_cost(1024)
        assert c1024 < 11 * c2

    def test_serialized_resource_queues(self):
        r = SerializedResource()
        assert r.visit(arrival=0.0, service=1.0) == 1.0
        # arrives at 0.5 but server busy until 1.0
        assert r.visit(arrival=0.5, service=1.0) == 2.0
        assert r.total_wait == 0.5
        assert r.visits == 2

    def test_virtual_clocks(self):
        vc = VirtualClocks(3)
        vc.advance(1, 2.0)
        vc.raise_to(1, 1.0)  # never backwards
        assert vc.now(1) == 2.0
        vc.raise_to(2, 5.0)
        assert vc.makespan == 5.0


class TestPolicies:
    def _env(self, src, seq=0):
        return Envelope(src=src, dst=0, ctx=0, tag=0, payload=None, seq=seq)

    def test_arrival_takes_head(self):
        envs = [self._env(3), self._env(1)]
        assert ArrivalPolicy().choose(envs).src == 3

    def test_lowest_highest(self):
        envs = [self._env(3), self._env(1), self._env(2)]
        assert LowestRankPolicy().choose(envs).src == 1
        assert HighestRankPolicy().choose(envs).src == 3

    def test_seeded_random_deterministic(self):
        envs = [self._env(i) for i in range(5)]
        a = [SeededRandomPolicy(9).choose(envs).src for _ in range(3)]
        b = [SeededRandomPolicy(9).choose(envs).src for _ in range(3)]
        # fresh policies with same seed produce the same first pick
        assert a[0] == b[0]

    def test_make_policy_specs(self):
        assert make_policy("arrival").name == "arrival"
        assert make_policy("random:7").seed == 7
        assert make_policy(LowestRankPolicy()).name == "lowest_rank"
        with pytest.raises(ValueError):
            make_policy("nonsense")


class TestSchedulingModes:
    def test_run_to_block_deterministic(self):
        """Identical runs produce identical wildcard outcomes."""
        from repro.mpi.constants import ANY_SOURCE
        from repro.mpi.request import Status

        def prog(p):
            if p.rank == 0:
                order = []
                st = Status()
                for _ in range(2):
                    p.world.recv(source=ANY_SOURCE, status=st)
                    order.append(st.source)
                return tuple(order)
            p.world.send(p.rank, dest=0)

        outs = {run_ok(prog, 3).returns[0] for _ in range(5)}
        assert len(outs) == 1

    def test_all_modes_agree_on_deterministic_program(self, sched_mode):
        def prog(p):
            acc = p.world.allreduce(p.rank + 1)
            sub = p.world.split(color=p.rank % 2, key=p.rank)
            acc += sub.allreduce(1)
            sub.free()
            return acc

        res = run_ok(prog, 4, mode=sched_mode)
        assert set(res.returns.values()) == {12}

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            MessageEngine(2, mode="chaotic")

    def test_nprocs_validated(self):
        with pytest.raises(ValueError):
            MessageEngine(0)

    def test_runtime_single_shot(self):
        def prog(p):
            pass

        rt = Runtime(2, prog)
        rt.run()
        with pytest.raises(RuntimeError):
            rt.run()


class TestToolCostAccounting:
    def test_tool_traffic_cheaper_than_user_traffic(self):
        def prog(p):
            target = p.engine.contexts  # silence lint; real work below
            if p.rank == 0:
                p.world.send(b"x" * 1024, dest=1)
            else:
                p.world.recv(source=0)

        plain = run_ok(prog, 2).makespan

        shared = {}

        def prog_tool(p):
            from repro.mpi.communicator import Communicator

            comm = Communicator(shared["ctx"], p)
            if p.rank == 0:
                req = p.pmpi.isend(comm, b"x" * 1024, 1, 0)
                p.pmpi.wait(req)
            else:
                req = p.pmpi.irecv(comm, 0, 0)
                p.pmpi.wait(req)

        rt = Runtime(2, prog_tool)
        shared["ctx"] = rt.engine.new_tool_context(rt.engine.world, "t")
        res = rt.run()
        res.raise_any()
        assert res.makespan < plain

    def test_charge_helper(self):
        def prog(p):
            p.engine.charge(p.rank, 0.25)

        res = run_ok(prog, 2)
        assert res.makespan >= 0.25


class TestEngineStats:
    def test_envelope_and_match_counters(self):
        from repro.mpi.constants import ANY_SOURCE

        def prog(p):
            if p.rank == 0:
                p.world.send("a", dest=1)
            else:
                p.world.recv(source=ANY_SOURCE)

        rt = Runtime(2, prog)
        res = rt.run()
        res.raise_any()
        assert rt.engine.stats.envelopes == 1
        assert rt.engine.stats.matches == 1
        assert rt.engine.stats.wildcard_matches == 1

    def test_mailbox_depths_empty_after_clean_run(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("a", dest=1)
            else:
                p.world.recv(source=0)

        rt = Runtime(2, prog)
        rt.run().raise_any()
        assert all(d == (0, 0) for d in rt.engine.mailbox_depths())
