"""Unit tests of the DFS schedule generator (no MPI runs involved)."""

import pytest

from repro.clocks.lamport import LamportStamp
from repro.dampi.epoch import EpochRecord, PotentialMatch, RunTrace
from repro.dampi.explorer import DecisionNode, ScheduleGenerator


def trace_with(epochs_spec, matches_spec, nprocs=4):
    """Build a RunTrace from compact specs.

    ``epochs_spec``: list of (rank, lc, matched_source[, explore]).
    ``matches_spec``: list of (rank, lc, alt_source).
    """
    epochs = {}
    for spec in epochs_spec:
        rank, lc, matched = spec[:3]
        explore = spec[3] if len(spec) > 3 else True
        e = EpochRecord(
            rank=rank,
            lc=lc,
            index=len(epochs.get(rank, [])),
            ctx=0,
            tag=1,
            stamp=LamportStamp(lc + 1),
            explore=explore,
        )
        e.matched_source = matched
        e.matched_env_uid = -(rank * 1000 + lc)  # unique, never collides
        epochs.setdefault(rank, []).append(e)
    matches = [
        PotentialMatch(epoch=(r, lc), source=s, env_uid=r * 100 + lc * 10 + s, seq=0, tag=1)
        for r, lc, s in matches_spec
    ]
    return RunTrace(nprocs=nprocs, epochs=epochs, potential_matches=matches)


class TestSeedAndWalk:
    def test_no_alternatives_means_done(self):
        g = ScheduleGenerator()
        g.seed(trace_with([(0, 0, 1)], []))
        assert g.next_decisions() is None
        assert g.exhausted

    def test_single_alternative_single_replay(self):
        g = ScheduleGenerator()
        g.seed(trace_with([(0, 0, 1)], [(0, 0, 2)]))
        d = g.next_decisions()
        assert d.forced == {(0, 0): 2}
        assert d.flip == (0, 0)
        g.integrate(trace_with([(0, 0, 2)], [(0, 0, 1)]))
        assert g.next_decisions() is None

    def test_deepest_first(self):
        g = ScheduleGenerator()
        g.seed(
            trace_with(
                [(0, 0, 1), (0, 1, 1)],
                [(0, 0, 2), (0, 1, 2)],
            )
        )
        d = g.next_decisions()
        assert d.flip == (0, 1)  # deepest node flips first
        # prefix keeps the self-run choice of the shallower node
        assert d.forced == {(0, 0): 1, (0, 1): 2}

    def test_replay_discovers_new_epochs(self):
        g = ScheduleGenerator()
        g.seed(trace_with([(0, 0, 1)], [(0, 0, 2)]))
        d = g.next_decisions()
        # the replay, having matched 2, discovers a brand-new epoch
        g.integrate(
            trace_with(
                [(0, 0, 2), (1, 1, 0)],
                [(0, 0, 1), (1, 1, 3)],
            )
        )
        d2 = g.next_decisions()
        assert d2.flip == (1, 1)
        assert d2.forced == {(0, 0): 2, (1, 1): 3}

    def test_new_alternatives_merged_into_prefix(self):
        g = ScheduleGenerator()
        g.seed(trace_with([(0, 0, 1), (0, 1, 1)], [(0, 1, 2)]))
        d = g.next_decisions()
        assert d.flip == (0, 1)
        # replay reveals an alternative at the *prefix* node (0,0)
        g.integrate(trace_with([(0, 0, 1), (0, 1, 2)], [(0, 0, 3)]))
        d2 = g.next_decisions()
        assert d2.flip == (0, 0)
        assert d2.forced == {(0, 0): 3}

    def test_frozen_loop_abstraction_never_flipped(self):
        g = ScheduleGenerator()
        g.seed(trace_with([(0, 0, 1, False)], [(0, 0, 2)]))
        assert g.next_decisions() is None

    def test_unmatched_epoch_never_forced(self):
        g = ScheduleGenerator()
        g.seed(
            trace_with(
                [(0, 0, None), (1, 1, 1)],
                [(1, 1, 2)],
            )
        )
        d = g.next_decisions()
        assert (0, 0) not in d.forced

    def test_integrate_requires_pending_flip(self):
        g = ScheduleGenerator()
        g.seed(trace_with([(0, 0, 1)], []))
        with pytest.raises(RuntimeError):
            g.integrate(trace_with([(0, 0, 1)], []))

    def test_double_seed_rejected(self):
        g = ScheduleGenerator()
        g.seed(trace_with([], []))
        with pytest.raises(RuntimeError):
            g.seed(trace_with([], []))

    def test_divergence_counted(self):
        g = ScheduleGenerator()
        g.seed(trace_with([(0, 0, 1)], [(0, 0, 2)]))
        g.next_decisions()
        diverged = trace_with([(0, 0, 2)], [])
        diverged.unconsumed_decisions = [(0, 0)]
        g.integrate(diverged)
        assert g.divergences == 1


class TestAbandon:
    """Lost replays (worker crash/timeout) must not corrupt the walk."""

    def test_abandon_restores_the_executed_chosen(self):
        g = ScheduleGenerator()
        g.seed(trace_with([(0, 0, 1)], [(0, 0, 2), (0, 0, 3)]))
        node = g.path[0]
        d = g.next_decisions()
        assert d.forced[(0, 0)] == 2 and node.chosen == 2
        g.abandon()
        # regression: chosen used to stay at the lost alternative (2);
        # the source that actually executed along this path is still 1
        assert node.chosen == 1
        assert node.tried == {1, 2}  # the lost alternative is never re-emitted

    def test_lost_alternative_not_reemitted_and_prefix_stays_honest(self):
        g = ScheduleGenerator()
        g.seed(trace_with([(0, 0, 1), (0, 1, 1)], [(0, 0, 2), (0, 1, 2)]))
        d = g.next_decisions()
        assert d.flip == (0, 1) and d.forced[(0, 1)] == 2
        g.abandon()
        # the next schedule flips the shallower node; the abandoned node's
        # prefix entry (if any future flip includes it) must carry the
        # executed source, which the snapshot below also certifies
        d2 = g.next_decisions()
        assert d2.flip == (0, 0)
        assert g.path[1].chosen == 1

    def test_integrate_after_abandon_walks_the_sibling(self):
        g = ScheduleGenerator()
        g.seed(trace_with([(0, 0, 1)], [(0, 0, 2), (0, 0, 3)]))
        g.next_decisions()  # flip to 2
        g.abandon()  # ... lost
        d = g.next_decisions()  # sibling alternative
        assert d.flip == (0, 0) and d.forced[(0, 0)] == 3
        g.integrate(trace_with([(0, 0, 3)], []))
        assert g.next_decisions() is None  # space exhausted, no re-emission

    def test_abandoned_state_snapshots_faithfully(self):
        """A checkpoint taken after an abandon must record the executed
        source, or a resumed walk would diverge from the journal."""
        from repro.dampi.journal import restore_generator, snapshot_generator

        g = ScheduleGenerator()
        g.seed(trace_with([(0, 0, 1)], [(0, 0, 2), (0, 0, 3)]))
        g.next_decisions()
        g.abandon()
        snap = snapshot_generator(g)
        assert snap["path"][0]["chosen"] == 1
        restored = restore_generator(snap)
        assert restored.next_decisions() == g.next_decisions()


class TestBoundedMixing:
    def test_k0_freezes_entire_suffix(self):
        g = ScheduleGenerator(bound_k=0)
        g.seed(trace_with([(0, 0, 1)], [(0, 0, 2)]))
        g.next_decisions()
        g.integrate(
            trace_with(
                [(0, 0, 2), (0, 1, 1), (0, 2, 1)],
                [(0, 1, 3), (0, 2, 3)],
            )
        )
        # fresh nodes (0,1) and (0,2) are frozen; nothing left to flip
        assert g.next_decisions() is None

    def test_k1_allows_one_deep(self):
        g = ScheduleGenerator(bound_k=1)
        g.seed(trace_with([(0, 0, 1)], [(0, 0, 2)]))
        g.next_decisions()
        g.integrate(
            trace_with(
                [(0, 0, 2), (0, 1, 1), (0, 2, 1)],
                [(0, 1, 3), (0, 2, 3)],
            )
        )
        d = g.next_decisions()
        assert d.flip == (0, 1)  # within the window
        g.integrate(trace_with([(0, 0, 2), (0, 1, 3)], []))
        assert g.next_decisions() is None  # (0,2) was frozen, gone now

    def test_run0_nodes_never_distance_frozen(self):
        g = ScheduleGenerator(bound_k=0)
        g.seed(
            trace_with(
                [(0, 0, 1), (0, 1, 1), (0, 2, 1)],
                [(0, 0, 2), (0, 1, 2), (0, 2, 2)],
            )
        )
        flips = []
        while True:
            d = g.next_decisions()
            if d is None:
                break
            flips.append(d.flip)
            # replay reproduces the prefix and nothing new
            epochs = [(0, lc, d.forced.get((0, lc), 1)) for lc in (0, 1, 2)]
            g.integrate(trace_with(epochs, []))
        assert set(flips) == {(0, 0), (0, 1), (0, 2)}  # all three flipped once

    def test_stats(self):
        g = ScheduleGenerator(bound_k=0)
        g.seed(trace_with([(0, 0, 1)], [(0, 0, 2)]))
        s = g.stats()
        assert s["path_length"] == 1
        assert s["open_alternatives"] == 1


class TestDecisionNode:
    def test_untried(self):
        n = DecisionNode(
            key=(0, 0), order=(0, 0, 0), chosen=1, tried={1}, alternatives={1, 2, 3}
        )
        assert n.untried == {2, 3}
