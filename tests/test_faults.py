"""The deterministic fault-injection harness, and what it proves:

* the plan grammar parses (and rejects) what the docs promise;
* kill/hang/delay/raise fire at the self/run/flip/stage/cell sites;
* a worker lost mid-wave is contained — the campaign keeps walking;
* a wedged worker is abandoned by recycling the pool, not waited on;
* a killed campaign cell is recorded failed and the sweep keeps going;
* none of it leaks into the deterministic telemetry namespaces.
"""

import json
import multiprocessing
import os

import pytest

from repro.dampi import (
    DampiConfig,
    DampiVerifier,
    FaultInjected,
    FaultPlan,
    run_campaign,
)
from repro.dampi.campaign import escalating_verify
from repro.dampi.faults import (
    DEFAULT_HANG_SECONDS,
    FAULT_EXIT_CODE,
    FaultPlanError,
    _parse_term,
)
from repro.obs.metrics import deterministic_view
from repro.workloads.patterns import wildcard_lattice
from tests.test_parallel import _report_fingerprint

LATTICE = {"receives": 2, "senders": 2}


class TestPlanGrammar:
    @pytest.mark.parametrize(
        "term, action, site, selector, param",
        [
            ("kill@self", "kill", "self", (), None),
            ("kill@run:3", "kill", "run", (3,), None),
            ("kill@flip:1.2", "kill", "flip", (1, 2), None),
            ("kill@flip:1.2.0", "kill", "flip", (1, 2, 0), None),
            ("hang@flip:1.2:30", "hang", "flip", (1, 2), 30.0),
            ("delay@run:2:0.05", "delay", "run", (2,), 0.05),
            ("raise@run:4", "raise", "run", (4,), None),
            ("kill@stage:k1", "kill", "stage", ("k1",), None),
            ("kill@stage:unbounded", "kill", "stage", ("unbounded",), None),
            ("kill@cell:3.quick-k0", "kill", "cell", (3, "quick-k0"), None),
            ("kill@worker:2", "kill", "worker", (2,), None),
            ("kill@worker:2.5", "kill", "worker", (2, 5), None),
            ("hang@worker:1.3:60", "hang", "worker", (1, 3), 60.0),
            ("kill@coord:3", "kill", "coord", (3,), None),
        ],
    )
    def test_valid_terms(self, term, action, site, selector, param):
        fault = _parse_term(term)
        assert (fault.action, fault.site, fault.selector, fault.param) == (
            action, site, selector, param,
        )

    @pytest.mark.parametrize(
        "term",
        [
            "kill",                  # no site
            "explode@self",          # unknown action
            "kill@everywhere",       # unknown site
            "kill@run",              # run needs an index
            "kill@run:x",            # non-integer index
            "kill@flip:1",           # flip needs rank.lc
            "kill@flip:1.2.3.4",     # too many flip fields
            "kill@stage",            # stage needs a label
            "kill@cell:3",           # cell needs nprocs.name
            "kill@run:1:2:3",        # trailing fields
            "kill@worker",           # worker needs an id
            "kill@worker:x",         # non-integer id
            "kill@worker:1.2.3",     # too many worker fields
            "kill@coord",            # coord needs a record index
            "kill@coord:x",          # non-integer index
        ],
    )
    def test_bad_terms_rejected(self, term):
        with pytest.raises(FaultPlanError):
            _parse_term(term)

    def test_plan_parse_and_spec_roundtrip(self):
        spec = "kill@run:3,hang@flip:1.2:30,delay@self:0.5"
        plan = FaultPlan.parse(spec)
        assert len(plan.faults) == 3
        assert FaultPlan.parse(plan.spec()).spec() == plan.spec()

    def test_empty_plan_is_falsy_noop(self):
        plan = FaultPlan.parse(None)
        assert not plan
        plan.fire("self")  # no-op, no error

    def test_config_validates_plan_eagerly(self):
        with pytest.raises(FaultPlanError):
            DampiConfig(fault_plan="explode@self")

    def test_prefix_selector_matching(self):
        fault = _parse_term("kill@flip:1.2")
        assert fault.matches((1, 2))
        assert fault.matches((1, 2, 0))  # any source at that epoch
        assert not fault.matches((1, 3))
        exact = _parse_term("kill@flip:1.2.0")
        assert exact.matches((1, 2, 0))
        assert not exact.matches((1, 2))  # site provides fewer fields


class TestSoftActions:
    def test_raise_aborts_the_verification(self):
        v = DampiVerifier(
            wildcard_lattice, 3, DampiConfig(fault_plan="raise@run:1"),
            kwargs=LATTICE,
        )
        with pytest.raises(FaultInjected):
            v.verify()

    def test_one_shot_across_shared_plan(self):
        plan = FaultPlan.parse("raise@run:1")
        with pytest.raises(FaultInjected):
            DampiVerifier(
                wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
            ).verify(faults=plan)
        # same plan instance: already fired, the retry sails through
        report = DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
        ).verify(faults=plan)
        assert report.ok

    def test_delay_changes_nothing_but_wall_clock(self):
        oracle = DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
        ).verify()
        delayed = DampiVerifier(
            wildcard_lattice,
            3,
            DampiConfig(fault_plan="delay@run:1:0.01,delay@self:0.01"),
            kwargs=LATTICE,
        ).verify()
        assert _report_fingerprint(delayed) == _report_fingerprint(oracle)

    def test_default_hang_duration_is_an_hour(self):
        assert DEFAULT_HANG_SECONDS == 3600.0


def _pool_verify_child(conn, fault_plan, timeout):
    """Child-process body: a pooled verification whose fault plan targets
    replay execution.  Run in a child so that if containment ever fails
    and the kill reaches the main loop, it takes down this sacrificial
    process (exitcode 43) instead of the test runner."""
    cfg = DampiConfig(
        jobs=2,
        force_jobs=True,
        fault_plan=fault_plan,
        **({"job_timeout_seconds": timeout} if timeout else {}),
    )
    report = DampiVerifier(
        wildcard_lattice, 3, cfg, kwargs=LATTICE
    ).verify()
    conn.send(
        {
            "interleavings": report.interleavings,
            "error_kinds": sorted({e.kind for e in report.errors}),
            "details": sorted(e.detail for e in report.errors),
            "stats": report.parallel_stats,
        }
    )
    conn.close()
    os._exit(0)


def _pool_verify_outcome(fault_plan, timeout=None):
    ctx = multiprocessing.get_context("fork")
    recv, send = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_pool_verify_child, args=(send, fault_plan, timeout))
    proc.start()
    send.close()
    payload = recv.recv() if recv.poll(120) else None
    proc.join(30)
    assert proc.exitcode == 0, (
        f"main verification loop died (exitcode {proc.exitcode}) — "
        f"a worker-targeted fault escaped containment"
    )
    assert payload is not None
    return payload


class TestWorkerFaults:
    def test_midwave_kill_is_contained_to_the_worker(self):
        """A worker killed mid-replay (flip (0,0) runs only in the pool)
        breaks the pool; the campaign records the lost replay as a crash
        witness and finishes the rest of the walk demoted."""
        out = _pool_verify_outcome("kill@flip:0.0")
        assert "crash" in out["error_kinds"]
        assert any("worker died" in d for d in out["details"])
        assert out["stats"]["demoted"]
        assert out["interleavings"] >= 3  # self + surviving replays + loss

    def test_hung_worker_is_abandoned_by_recycling_the_pool(self):
        """Satellite bugfix: a wedged worker cannot be cancel()ed — the
        pool is rebuilt, the worker counted abandoned, and the session
        keeps its pool (no demotion to inline)."""
        out = _pool_verify_outcome("hang@flip:0.0:30", timeout=0.25)
        assert any("exceeded" in d for d in out["details"])
        assert out["stats"]["abandoned_workers"] == 1
        assert not out["stats"]["demoted"]
        assert out["stats"]["mode"] == "pool"


class TestStageFaults:
    def test_stage_boundary_fault_fires_between_stages(self):
        with pytest.raises(FaultInjected):
            escalating_verify(
                wildcard_lattice,
                4,
                DampiConfig(fault_plan="raise@stage:k1"),
                kwargs={"receives": 3, "senders": 3},
            )

    def test_unfired_stage_fault_is_harmless(self):
        # stage k9 never runs, so the fault never fires
        result = escalating_verify(
            wildcard_lattice,
            3,
            DampiConfig(fault_plan="raise@stage:k9"),
            kwargs=LATTICE,
        )
        assert result.final_report is not None and not result.errors


class TestCellFaults:
    def test_serial_cell_fault_recorded_and_sweep_continues(self):
        configs = {
            "boom": DampiConfig(fault_plan="raise@cell:3.boom"),
            "ok": DampiConfig(),
        }
        result = run_campaign(
            wildcard_lattice, [3], configs=configs, kwargs=LATTICE, jobs=1
        )
        assert not result.ok
        failed = result.failed_cells
        assert [c.config_name for c in failed] == ["boom"]
        assert "FaultInjected" in failed[0].failure
        ok = [c for c in result.cells if c.config_name == "ok"]
        assert ok[0].report is not None and ok[0].report.ok
        assert "FAILED" in result.summary()

    def test_pooled_cell_kill_blames_the_cell_and_sweep_survives(self):
        """Satellite bugfix: a cell worker dying used to crash the whole
        sweep out of the bare fut.result(); now the dead cell is recorded
        failed and the other cells still verify."""
        configs = {
            "boom": DampiConfig(fault_plan="kill@cell:3.boom"),
            "ok": DampiConfig(),
        }
        result = run_campaign(
            wildcard_lattice, [3], configs=configs, kwargs=LATTICE, jobs=2
        )
        assert not result.ok
        assert [c.config_name for c in result.failed_cells] == ["boom"]
        assert "died" in result.failed_cells[0].failure
        ok = [c for c in result.cells if c.config_name == "ok"]
        assert ok[0].report is not None and ok[0].report.ok
        # cell order matches the grid, failures included
        assert [c.config_name for c in result.cells] == ["boom", "ok"]


class TestTelemetryIsolation:
    def test_fault_and_journal_metrics_are_nondeterministic_namespaces(
        self, tmp_path
    ):
        """Journaling and injecting (harmless) faults must not perturb the
        deterministic engine.*/pb.*/campaign.*/run.* totals."""
        def verify(jobs, journal=None, fault_plan=None):
            cfg = DampiConfig(
                jobs=jobs,
                force_jobs=jobs > 1,
                fault_plan=fault_plan,
                trace_events=True,
            )
            return DampiVerifier(
                wildcard_lattice, 3, cfg, kwargs=LATTICE
            ).verify(journal=journal)

        plain = verify(1)
        dressed = verify(
            2, journal=tmp_path / "j", fault_plan="delay@run:1:0.01"
        )
        assert deterministic_view(
            plain.telemetry["metrics"]
        ) == deterministic_view(dressed.telemetry["metrics"])
        counters = dressed.telemetry["metrics"]["counters"]
        assert counters.get("fault.injected") == 1
        assert counters.get("fault.delay") == 1
        assert counters.get("journal.appends", 0) > 0
        view = deterministic_view(dressed.telemetry["metrics"])["counters"]
        assert not any(
            name.startswith(("fault.", "journal.", "exec.")) for name in view
        )
