"""Process groups, comm_create, Cartesian topologies, truncation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidRankError, MPIError, TruncationError
from repro.mpi.groups import CartTopology, Group, dims_create
from repro.mpi.runtime import run_program

from tests.conftest import run_ok


class TestGroupAlgebra:
    def test_construction_rejects_duplicates(self):
        with pytest.raises(MPIError):
            Group([0, 1, 1])

    def test_incl_excl(self):
        g = Group([10, 20, 30, 40])
        assert g.incl([2, 0]).ranks == (30, 10)
        assert g.excl([1, 3]).ranks == (10, 30)
        with pytest.raises(InvalidRankError):
            g.incl([9])
        with pytest.raises(InvalidRankError):
            g.excl([9])

    def test_union_keeps_mpi_order(self):
        a, b = Group([1, 2, 3]), Group([3, 4, 2])
        assert a.union(b).ranks == (1, 2, 3, 4)

    def test_intersection_and_difference(self):
        a, b = Group([1, 2, 3, 4]), Group([4, 2])
        assert a.intersection(b).ranks == (2, 4)
        assert a.difference(b).ranks == (1, 3)

    def test_rank_of_and_contains(self):
        g = Group([5, 7])
        assert g.rank_of(7) == 1
        assert g.rank_of(6) is None
        assert 5 in g and 6 not in g

    @given(
        a=st.lists(st.integers(min_value=0, max_value=15), unique=True, max_size=8),
        b=st.lists(st.integers(min_value=0, max_value=15), unique=True, max_size=8),
    )
    def test_algebra_properties(self, a, b):
        ga, gb = Group(a), Group(b)
        u = ga.union(gb)
        i = ga.intersection(gb)
        d = ga.difference(gb)
        assert set(u.ranks) == set(a) | set(b)
        assert set(i.ranks) == set(a) & set(b)
        assert set(d.ranks) == set(a) - set(b)
        assert i.size + d.size == ga.size


class TestCommCreate:
    def test_subgroup_communicator(self):
        def prog(p):
            evens = p.world.group_of().incl([0, 2])
            sub = p.world.create(evens)
            if p.rank in (0, 2):
                assert sub.size == 2
                assert sub.rank == (0 if p.rank == 0 else 1)
                assert sub.allreduce(1) == 2
                sub.free()
            else:
                assert sub is None

        run_ok(prog, 4)

    def test_group_order_defines_ranks(self):
        def prog(p):
            reordered = p.world.group_of().incl([2, 0, 1])
            sub = p.world.create(reordered)
            # world rank 2 becomes sub rank 0, etc.
            expect = {2: 0, 0: 1, 1: 2}[p.rank]
            assert sub.rank == expect
            sub.free()

        run_ok(prog, 3)


class TestDimsCreate:
    def test_balanced_factorisation(self):
        assert dims_create(16, 2) == [4, 4]
        assert dims_create(12, 2) == [4, 3]
        assert dims_create(8, 3) == [2, 2, 2]
        assert dims_create(7, 2) == [7, 1]

    def test_product_invariant(self):
        for n in range(1, 65):
            for nd in (1, 2, 3):
                dims = dims_create(n, nd)
                prod = 1
                for d in dims:
                    prod *= d
                assert prod == n
                assert dims == sorted(dims, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            dims_create(0, 2)


class TestCartTopology:
    def test_coords_roundtrip(self):
        topo = CartTopology((3, 4), (False, False))
        for r in range(12):
            assert topo.rank(topo.coords(r)) == r

    def test_shift_interior(self):
        topo = CartTopology((3, 3), (False, False))
        src, dst = topo.shift(4, 0)  # centre cell, row dimension
        assert (src, dst) == (1, 7)

    def test_shift_boundary_nonperiodic(self):
        topo = CartTopology((3,), (False,))
        src, dst = topo.shift(0, 0)
        assert src is None and dst == 1
        src, dst = topo.shift(2, 0)
        assert src == 1 and dst is None

    def test_shift_periodic_wraps(self):
        topo = CartTopology((4,), (True,))
        src, dst = topo.shift(0, 0)
        assert (src, dst) == (3, 1)

    def test_neighbors(self):
        topo = CartTopology((2, 2), (False, False))
        assert sorted(topo.neighbors(0)) == [1, 2]
        ring = CartTopology((4,), (True,))
        assert sorted(ring.neighbors(1)) == [0, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            CartTopology((2, 2), (False,))
        with pytest.raises(InvalidRankError):
            CartTopology((2,), (False,)).coords(5)

    def test_cart_create_halo_exchange(self):
        """The classic pattern: build a periodic 2-D grid and do one halo
        exchange along each dimension using cart shifts."""

        def prog(p):
            dims = dims_create(p.size, 2)
            grid, topo = p.world.cart_create(dims, periods=(True, True))
            total = 0
            for dim in range(2):
                src, dst = topo.shift(grid.rank, dim)
                got = grid.sendrecv(grid.rank, dest=dst, source=src, sendtag=dim, recvtag=dim)
                assert got == src
                total += got
            grid.free()
            return total

        run_ok(prog, 6)

    def test_cart_create_excludes_extra_ranks(self):
        def prog(p):
            grid, topo = p.world.cart_create((2, 2))
            if p.rank < 4:
                assert grid.size == 4
                grid.free()
            else:
                assert grid is None

        run_ok(prog, 5)

    def test_cart_too_big_rejected(self):
        def prog(p):
            p.world.cart_create((4, 4))

        res = run_program(prog, 4)
        assert any(isinstance(e, MPIError) for e in res.primary_errors.values())


class TestTruncation:
    def test_oversized_message_raises_at_wait(self):
        def prog(p):
            if p.rank == 0:
                p.world.send([1, 2, 3, 4, 5], dest=1)
            else:
                p.world.recv(source=0, max_count=3)

        res = run_program(prog, 2)
        assert any(
            isinstance(e, TruncationError) for e in res.primary_errors.values()
        )

    def test_exact_fit_is_fine(self):
        def prog(p):
            if p.rank == 0:
                p.world.send([1, 2, 3], dest=1)
            else:
                assert p.world.recv(source=0, max_count=3) == [1, 2, 3]

        run_ok(prog, 2)

    def test_unbounded_by_default(self):
        def prog(p):
            if p.rank == 0:
                p.world.send(list(range(1000)), dest=1)
            else:
                p.world.recv(source=0)

        run_ok(prog, 2)
