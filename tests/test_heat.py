"""The heat-equation solver: numerics, partitioning, verified wildcards."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier
from repro.mpi.runtime import run_program
from repro.workloads.heat import (
    _partition,
    gather_solution,
    heat_program,
    heat_program_wildcard,
    reference_solution,
)

from tests.conftest import run_ok


class TestPartition:
    @given(
        n=st.integers(min_value=1, max_value=200),
        size=st.integers(min_value=1, max_value=16),
    )
    def test_partition_covers_domain_exactly(self, n, size):
        spans = [_partition(n, size, r) for r in range(size)]
        assert spans[0][0] == 0 and spans[-1][1] == n
        for (_, hi), (lo2, _) in zip(spans, spans[1:]):
            assert hi == lo2
        sizes = [hi - lo for lo, hi in spans]
        assert max(sizes) - min(sizes) <= 1  # balanced


class TestNumerics:
    @pytest.mark.parametrize("nprocs", [2, 3, 4, 7])
    def test_matches_reference_exactly(self, nprocs):
        n, steps = 56, 12
        res = run_ok(
            lambda p: gather_solution(p, heat_program, n=n, steps=steps), nprocs
        )
        expected = reference_solution(n, steps)
        assert np.allclose(res.returns[0], expected, atol=1e-12)

    def test_wildcard_variant_matches_reference(self):
        n, steps = 30, 5
        res = run_ok(
            lambda p: gather_solution(p, heat_program_wildcard, n=n, steps=steps), 3
        )
        assert np.allclose(res.returns[0], reference_solution(n, steps), atol=1e-12)

    def test_diffusion_smooths(self):
        out = reference_solution(64, 400)
        assert np.std(out) < np.std(reference_solution(64, 0))

    def test_wildcard_needs_three_ranks(self):
        res = run_program(heat_program_wildcard, 2)
        assert any(isinstance(e, ValueError) for e in res.primary_errors.values())


class TestVerifiedNumerics:
    def test_every_arrival_order_preserves_the_solution(self):
        """DAMPI forces every halo arrival order; each interleaving
        recomputes the field and checks it against the reference."""
        n, steps, nprocs = 18, 2, 3
        expected = reference_solution(n, steps)

        def checked(p):
            from repro.workloads.heat import _partition

            block = heat_program_wildcard(p, n=n, steps=steps)
            lo, hi = _partition(n, p.size, p.rank)
            if not np.allclose(block, expected[lo:hi], atol=1e-12):
                raise AssertionError("solution depends on halo arrival order")

        cfg = DampiConfig(enable_monitor=False, max_interleavings=300)
        rep = DampiVerifier(checked, nprocs, cfg).verify()
        assert rep.ok, rep.summary()
        assert rep.interleavings > 1  # real choice existed and was explored
