"""The 2-D heat solver: numerics across process-grid shapes."""

import numpy as np
import pytest

from repro.mpi.runtime import run_program
from repro.workloads.heat2d import (
    _pack_column,
    _span,
    _unpack_column,
    gather_solution_2d,
    reference_solution_2d,
)

from tests.conftest import run_ok


class TestHelpers:
    def test_span_partitions(self):
        spans = [_span(10, 3, i) for i in range(3)]
        assert spans == [(0, 4), (4, 7), (7, 10)]

    def test_column_pack_roundtrip(self):
        block = np.arange(12, dtype=np.float64).reshape(3, 4)
        for col in range(4):
            packed = _pack_column(block, col)
            assert np.array_equal(_unpack_column(packed), block[:, col])

    def test_column_pack_is_size_not_extent(self):
        from repro.mpi.datatypes import sizeof

        block = np.zeros((8, 100))
        packed = _pack_column(block, 0)
        assert sizeof(packed) == 8 * 8  # one column's bytes, not the block's


class TestNumerics:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 6, 9])
    def test_matches_reference_for_grid_shapes(self, nprocs):
        ny, nx, steps = 18, 15, 6
        res = run_ok(
            lambda p: gather_solution_2d(p, ny=ny, nx=nx, steps=steps), nprocs
        )
        expected = reference_solution_2d(ny, nx, steps)
        assert np.allclose(res.returns[0], expected, atol=1e-12)

    def test_uneven_partition(self):
        # 7x11 over 4 ranks: nothing divides evenly
        res = run_ok(lambda p: gather_solution_2d(p, ny=7, nx=11, steps=3), 4)
        expected = reference_solution_2d(7, 11, 3)
        assert np.allclose(res.returns[0], expected, atol=1e-12)

    def test_extra_ranks_excluded_cleanly(self):
        # 5 ranks, 2x2 grid: rank 4 sits out but still gathers
        res = run_ok(lambda p: gather_solution_2d(p, ny=8, nx=8, steps=2), 5)
        expected = reference_solution_2d(8, 8, 2)
        assert np.allclose(res.returns[0], expected, atol=1e-12)

    def test_many_steps_stay_exact(self):
        res = run_ok(lambda p: gather_solution_2d(p, ny=12, nx=12, steps=40), 4)
        expected = reference_solution_2d(12, 12, 40)
        assert np.allclose(res.returns[0], expected, atol=1e-11)

    def test_energy_dissipates(self):
        out = reference_solution_2d(16, 16, 200)
        assert np.std(out) < np.std(reference_solution_2d(16, 16, 0))
