"""Non-blocking collectives: semantics, overlap, DAMPI clock handling."""

import pytest

from repro.dampi.clock_module import DampiClockModule
from repro.dampi.config import DampiConfig
from repro.dampi.piggyback import PiggybackModule
from repro.dampi.verifier import DampiVerifier
from repro.mpi.constants import ANY_SOURCE, MAX, SUM
from repro.mpi.runtime import run_program

from tests.conftest import run_ok


class TestSemantics:
    def test_ibarrier_completes_only_when_all_entered(self):
        def prog(p):
            if p.rank == 0:
                req = p.world.ibarrier()
                flag, _ = req.test()
                assert not flag  # rank 1 hasn't entered
                p.world.send("release", dest=1)
                req.wait()
            else:
                p.world.recv(source=0)
                p.world.ibarrier().wait()

        run_ok(prog, 2)

    def test_iallreduce_value(self):
        def prog(p):
            req = p.world.iallreduce(p.rank, op=MAX)
            st = req.wait()
            assert req.data == p.size - 1

        run_ok(prog, 5)

    def test_ibcast_root_completes_immediately(self):
        def prog(p):
            if p.rank == 0:
                req = p.world.ibcast("payload", root=0)
                flag, _ = req.test()
                assert flag  # root never waits on members
                p.world.send("after", dest=1)
            else:
                assert p.world.recv(source=0) == "after"
                req = p.world.ibcast(None, root=0)
                req.wait()
                assert req.data == "payload"

        run_ok(prog, 2)

    def test_overlap_compute_and_communication(self):
        """The reason icollectives exist: the barrier's wait time hides
        behind local compute."""

        def prog(p):
            req = p.world.ibarrier()
            p.compute(1.0e-3)
            req.wait()
            return p.engine.clocks.now(p.rank)

        res = run_ok(prog, 4)
        assert res.makespan < 1.2e-3  # ~compute time, not compute+barrier

    def test_unmatched_ibarrier_deadlocks_at_wait(self):
        def prog(p):
            if p.rank == 0:
                p.world.ibarrier().wait()  # rank 1 never joins

        res = run_program(prog, 2)
        assert res.deadlocked

    def test_interleaved_instances_pair_by_ordinal(self):
        def prog(p):
            r1 = p.world.iallreduce(1, op=SUM)
            r2 = p.world.iallreduce(10, op=SUM)
            assert r2.wait() is not None and r2.data == 20
            assert r1.wait() is not None and r1.data == 2

        run_ok(prog, 2)

    def test_waitall_over_mixed_kinds(self):
        def prog(p):
            reqs = [p.world.ibarrier(), p.world.iallreduce(1, op=SUM)]
            if p.rank == 0:
                reqs.append(p.world.irecv(source=1))
            else:
                reqs.append(p.world.isend("m", dest=0))
            p.waitall(reqs)
            assert reqs[1].data == 2

        run_ok(prog, 2)


class TestDampiIntegration:
    def test_icollective_clock_exchange_at_wait(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=1)
            if p.rank == 1:
                p.world.recv(source=ANY_SOURCE)  # tick
            p.world.iallreduce(1, op=SUM).wait()

        pb = PiggybackModule()
        cm = DampiClockModule(pb)
        res = run_program(prog, 3, modules=[cm, pb])
        res.raise_any()
        assert all(cm.clock_of(r).time >= 1 for r in range(3))

    def test_ibcast_clock_flows_from_root_only(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=2)
            if p.rank == 2:
                p.world.recv(source=ANY_SOURCE)  # rank 2 ticks
            p.world.ibcast("v" if p.rank == 1 else None, root=1).wait()

        pb = PiggybackModule()
        cm = DampiClockModule(pb)
        res = run_program(prog, 3, modules=[cm, pb])
        res.raise_any()
        assert cm.clock_of(0).time == 0  # rank 2's tick must not reach 0
        assert cm.clock_of(2).time == 1

    def test_crash_truncates_observable_space(self):
        """Documented behaviour: a self-run crash can hide sends that were
        never issued — DAMPI covers what any run *observed*, so here the
        crash is found but only one interleaving exists to explore."""

        def prog(p):
            if p.rank == 0:
                req = p.world.ibarrier()
                x = p.world.recv(source=ANY_SOURCE)
                req.wait()
                if x == 2:
                    raise RuntimeError("alternate")
            else:
                p.world.ibarrier().wait()
                p.world.send(p.rank, dest=0)

        rep = DampiVerifier(prog, 3).verify()
        assert any(e.kind == "crash" for e in rep.errors)
        assert rep.interleavings == 1

    def test_verification_with_ibarrier_clean(self):
        def prog(p):
            req = p.world.ibarrier()
            if p.rank == 0:
                got = {p.world.recv(source=ANY_SOURCE) for _ in range(2)}
                assert got == {1, 2}
            else:
                p.world.send(p.rank, dest=0)
            req.wait()

        rep = DampiVerifier(prog, 3).verify()
        assert rep.ok
        assert rep.interleavings == 2  # both match orders of the funnel
