"""The ISP centralized baseline: costs, serialization, equivalent coverage."""

import pytest

from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier
from repro.isp.scheduler import IspCostParams, IspInterpositionModule
from repro.isp.verifier import IspVerifier
from repro.mpi.constants import ANY_SOURCE, SUM
from repro.mpi.runtime import run_program
from repro.workloads.patterns import fig3_program, fig4_program, wildcard_lattice

from tests.conftest import run_ok


class TestSchedulerTax:
    def test_every_op_visits_the_scheduler(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=1)  # isend + wait
            else:
                p.world.recv(source=0)  # irecv + wait
            p.world.barrier()

        mod = IspInterpositionModule()
        res = run_ok(prog, 2, modules=[mod])
        stats = res.artifacts["isp"]
        assert stats["round_trips"] == 6
        assert res.central_visits == 6

    def test_wildcards_cost_more(self):
        params = IspCostParams(service=1e-6, wildcard_service=100e-6)

        def wild(p):
            if p.rank == 0:
                p.world.recv(source=ANY_SOURCE)
            else:
                p.world.send(1, dest=0)

        def det(p):
            if p.rank == 0:
                p.world.recv(source=1)
            else:
                p.world.send(1, dest=0)

        rw = run_ok(wild, 2, modules=[IspInterpositionModule(params)])
        rd = run_ok(det, 2, modules=[IspInterpositionModule(params)])
        assert rw.makespan > rd.makespan

    def test_serialization_grows_with_total_ops(self):
        """The scheduler queue makes time scale with *total* op count —
        doubling ranks (same per-rank work) roughly doubles time."""

        def prog(p):
            for _ in range(50):
                p.world.allreduce(1, op=SUM)

        t4 = run_ok(prog, 4, modules=[IspInterpositionModule()]).makespan
        t8 = run_ok(prog, 8, modules=[IspInterpositionModule()]).makespan
        assert t8 > 1.6 * t4

    def test_waitall_charged_once(self):
        def prog(p):
            if p.rank == 0:
                reqs = [p.world.irecv(source=1) for _ in range(4)]
                p.waitall(reqs)
            else:
                for i in range(4):
                    p.world.send(i, dest=0)

        mod = IspInterpositionModule()
        res = run_ok(prog, 2, modules=[mod])
        # rank0: 4 irecv + 1 waitall; rank1: 4 isend + 4 wait = 13
        assert res.artifacts["isp"]["round_trips"] == 13

    def test_dampi_has_no_central_visits(self):
        rep = DampiVerifier(fig3_program, 3).verify()
        v = IspVerifier(fig3_program, 3)
        v.verify()
        assert v.last_scheduler_stats["round_trips"] > 0

        from repro.mpi.runtime import Runtime
        from repro.dampi.piggyback import PiggybackModule
        from repro.dampi.clock_module import DampiClockModule

        pb = PiggybackModule()
        rt = Runtime(3, fig3_program, modules=[DampiClockModule(pb), pb])
        res = rt.run()
        assert res.central_visits == 0


class TestIspVerifier:
    def test_finds_fig3_bug(self):
        rep = IspVerifier(fig3_program, 3).verify()
        assert any(e.kind == "crash" for e in rep.errors)

    def test_complete_on_fig4(self):
        """ISP's centralized view is complete where Lamport-DAMPI is not."""
        rep = IspVerifier(fig4_program, 4).verify()
        assert rep.interleavings == 3

    def test_same_interleavings_as_dampi_on_lattice(self):
        kwargs = {"receives": 2, "senders": 3}
        ri = IspVerifier(wildcard_lattice, 4, kwargs=kwargs).verify()
        rd = DampiVerifier(wildcard_lattice, 4, kwargs=kwargs).verify()
        assert ri.interleavings == rd.interleavings == 9
        assert ri.outcomes == rd.outcomes

    def test_isp_slower_than_dampi(self):
        kwargs = {"receives": 2, "senders": 2}
        ri = IspVerifier(wildcard_lattice, 3, kwargs=kwargs).verify()
        rd = DampiVerifier(wildcard_lattice, 3, kwargs=kwargs).verify()
        assert ri.total_vtime > 3 * rd.total_vtime

    def test_config_forced_to_vector(self):
        v = IspVerifier(fig3_program, 3, DampiConfig(clock_impl="lamport"))
        assert v.config.clock_impl == "vector"
