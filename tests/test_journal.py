"""The durable campaign journal: crash, resume, bit-identity.

The acceptance bar for this subsystem: a campaign killed mid-run (by an
injected fault) and resumed from its journal produces a report
bit-identical to an uninterrupted run — without re-executing the
interleavings already journaled (the re-executed count is asserted).
"""

import json
import multiprocessing
import os

import pytest

from repro.cli import main
from repro.dampi import (
    CampaignJournal,
    DampiConfig,
    DampiVerifier,
    JournalError,
    escalating_verify,
    run_campaign,
)
from repro.dampi import journal as jr
from repro.dampi.decisions import EpochDecisions
from repro.dampi.explorer import ScheduleGenerator
from repro.dampi.faults import FAULT_EXIT_CODE
from repro.dampi.parallel import schedule_key
from repro.workloads.patterns import wildcard_lattice
from tests.test_explorer import trace_with
from tests.test_parallel import _report_fingerprint

#: 4 interleavings at np=3 — small enough to crash precisely mid-walk
LATTICE = {"receives": 2, "senders": 2}
#: 27 interleavings at np=4 — big enough for checkpoints and rotation
BIG = {"receives": 3, "senders": 3}


def _canon(report) -> dict:
    """The bit-identity view of a report: its JSON minus the two fields
    that are honest about wall-clock (and therefore never reproducible)."""
    d = json.loads(report.to_json())
    d.pop("wall_seconds", None)
    d.pop("telemetry", None)
    return d


def _verify_child(journal_dir, fault_plan, nprocs, kwargs, cfg_overrides):
    """Child-process body: run a journaled verification that a ``kill``
    fault is expected to take down."""
    cfg = DampiConfig(fault_plan=fault_plan, **cfg_overrides)
    DampiVerifier(
        wildcard_lattice, nprocs, cfg, kwargs=dict(kwargs)
    ).verify(journal=journal_dir)
    os._exit(0)  # reached only if the plan never killed us


def _crash_campaign(journal_dir, fault_plan, nprocs=3, kwargs=LATTICE, **cfg):
    """Run a journaled verification in a child process and assert the
    injected fault — not anything else — killed it."""
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(
        target=_verify_child,
        args=(str(journal_dir), fault_plan, nprocs, kwargs, cfg),
    )
    proc.start()
    proc.join(120)
    assert proc.exitcode == FAULT_EXIT_CODE, proc.exitcode


class TestCrashResume:
    def test_midrun_kill_then_resume_is_bit_identical(self, tmp_path):
        """THE acceptance test: kill the campaign before replay 2, resume,
        get the uninterrupted report back bit-for-bit — having re-executed
        only the runs the journal had not yet seen."""
        oracle = DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
        ).verify()
        journal_dir = tmp_path / "j"
        _crash_campaign(journal_dir, "kill@run:2")
        resumed = DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
        ).verify(journal=journal_dir)
        # the journal held the self run + replay 1; only 2..3 re-executed
        assert resumed.journal_stats["replayed"] == 2
        assert resumed.journal_stats["executed"] == oracle.interleavings - 2
        assert _canon(resumed) == _canon(oracle)
        assert _report_fingerprint(resumed) == _report_fingerprint(oracle)

    def test_kill_during_self_run_restarts_cleanly(self, tmp_path):
        oracle = DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
        ).verify()
        journal_dir = tmp_path / "j"
        _crash_campaign(journal_dir, "kill@self")
        resumed = DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
        ).verify(journal=journal_dir)
        # nothing made it to the journal before the kill
        assert resumed.journal_stats == {
            "dir": str(journal_dir),
            "replayed": 0,
            "executed": oracle.interleavings,
        }
        assert _canon(resumed) == _canon(oracle)

    def test_complete_journal_replays_without_executing(self, tmp_path):
        journal_dir = tmp_path / "j"
        first = DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
        ).verify(journal=journal_dir)
        assert first.journal_stats["executed"] == first.interleavings
        assert CampaignJournal(journal_dir).complete
        resumed = DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
        ).verify(journal=journal_dir)
        assert resumed.journal_stats["replayed"] == first.interleavings
        assert resumed.journal_stats["executed"] == 0
        assert _canon(resumed) == _canon(first)

    def test_checkpoint_fast_forward(self, tmp_path):
        """A kill deep in a large walk resumes through a checkpoint (the
        generator snapshot) rather than replaying every transition live."""
        cfg = dict(journal_checkpoint_interval=4)
        oracle = DampiVerifier(
            wildcard_lattice, 4, DampiConfig(**cfg), kwargs=BIG
        ).verify()
        journal_dir = tmp_path / "j"
        _crash_campaign(journal_dir, "kill@run:20", nprocs=4, kwargs=BIG, **cfg)
        journal = CampaignJournal(journal_dir)
        ckpt = journal.latest_checkpoint()
        assert ckpt is not None and ckpt["applied"] >= 4
        resumed = DampiVerifier(
            wildcard_lattice, 4, DampiConfig(**cfg), kwargs=BIG
        ).verify(journal=journal_dir)
        assert resumed.journal_stats["replayed"] == 20
        assert resumed.journal_stats["executed"] == oracle.interleavings - 20
        assert _canon(resumed) == _canon(oracle)

    def test_each_attempt_opens_a_new_segment(self, tmp_path):
        journal_dir = tmp_path / "j"
        _crash_campaign(journal_dir, "kill@run:2")
        segments = sorted(p.name for p in journal_dir.glob("segment-*.jsonl"))
        assert segments == ["segment-00000.jsonl"]
        DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
        ).verify(journal=journal_dir)
        segments = sorted(p.name for p in journal_dir.glob("segment-*.jsonl"))
        assert segments == ["segment-00000.jsonl", "segment-00001.jsonl"]

    def test_segment_rotation_preserves_resume(self, tmp_path):
        journal_dir = tmp_path / "j"
        cfg = dict(journal_segment_bytes=4096)
        oracle = DampiVerifier(
            wildcard_lattice, 4, DampiConfig(), kwargs=BIG
        ).verify()
        _crash_campaign(journal_dir, "kill@run:10", nprocs=4, kwargs=BIG, **cfg)
        assert len(list(journal_dir.glob("segment-*.jsonl"))) > 1
        resumed = DampiVerifier(
            wildcard_lattice, 4, DampiConfig(**cfg), kwargs=BIG
        ).verify(journal=journal_dir)
        assert resumed.journal_stats["replayed"] == 10
        assert _canon(resumed) == _canon(oracle)

    def test_torn_tail_is_dropped(self, tmp_path):
        """A record half-written at the instant of death (no trailing
        newline) is discarded on load instead of poisoning the journal."""
        journal_dir = tmp_path / "j"
        _crash_campaign(journal_dir, "kill@run:2")
        segment = max(journal_dir.glob("segment-*.jsonl"))
        with open(segment, "ab") as f:
            f.write(b'{"t": "run", "index": 99, "trace"')  # torn mid-record
        oracle = DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
        ).verify()
        resumed = DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
        ).verify(journal=journal_dir)
        assert resumed.journal_stats["replayed"] == 2
        assert _canon(resumed) == _canon(oracle)

    def test_corrupt_interior_record_is_rejected(self, tmp_path):
        journal_dir = tmp_path / "j"
        _crash_campaign(journal_dir, "kill@run:2")
        segment = max(journal_dir.glob("segment-*.jsonl"))
        with open(segment, "ab") as f:
            f.write(b"this is not json\n")  # newline-terminated: not a torn tail
        with pytest.raises(JournalError):
            CampaignJournal(journal_dir)

    def test_changed_config_is_rejected(self, tmp_path):
        journal_dir = tmp_path / "j"
        _crash_campaign(journal_dir, "kill@run:2")
        with pytest.raises(JournalError):
            DampiVerifier(
                wildcard_lattice, 3, DampiConfig(bound_k=0), kwargs=LATTICE
            ).verify(journal=journal_dir)

    def test_changed_kwargs_are_rejected(self, tmp_path):
        journal_dir = tmp_path / "j"
        _crash_campaign(journal_dir, "kill@run:2")
        with pytest.raises(JournalError):
            DampiVerifier(
                wildcard_lattice,
                3,
                DampiConfig(),
                kwargs={"receives": 3, "senders": 2},
            ).verify(journal=journal_dir)

    def test_execution_knobs_do_not_invalidate_the_journal(self, tmp_path):
        """jobs / fault_plan / journal tuning are bit-identity-preserving,
        so resuming under different values of them must be allowed."""
        journal_dir = tmp_path / "j"
        _crash_campaign(journal_dir, "kill@run:2")
        resumed = DampiVerifier(
            wildcard_lattice,
            3,
            DampiConfig(jobs=2, journal_checkpoint_interval=1),
            kwargs=LATTICE,
        ).verify(journal=journal_dir)
        assert resumed.journal_stats["replayed"] == 2

    def test_journal_stats_stay_off_the_report_json(self, tmp_path):
        report = DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=LATTICE
        ).verify(journal=tmp_path / "j")
        assert report.journal_stats is not None
        assert "journal_stats" not in json.loads(report.to_json())


class TestFailureEntryResume:
    def test_worker_crash_failure_entries_resume_bit_identically(self, tmp_path):
        """A replay lost to a dying pool worker lands in the journal as a
        failure entry; resuming replays the abandon and the rest of the
        walk matches the faulted run exactly."""
        cfg = DampiConfig(
            jobs=2, force_jobs=True, fault_plan="raise@flip:0.0"
        )
        journal_dir = tmp_path / "j"
        faulted = DampiVerifier(
            wildcard_lattice, 3, cfg, kwargs=LATTICE
        ).verify(journal=journal_dir)
        assert any(e.kind == "crash" for e in faulted.errors)
        resumed = DampiVerifier(
            wildcard_lattice, 3, DampiConfig(jobs=1), kwargs=LATTICE
        ).verify(journal=journal_dir)
        assert resumed.journal_stats["executed"] == 0
        assert _canon(resumed) == _canon(faulted)

    def test_post_crash_schedules_match_the_oracle_walk(self, tmp_path):
        """Regression for the abandon() bug: after a lost replay, every
        schedule the generator emits afterwards must still be one the
        clean oracle walk emits — a stale ``chosen`` on the flipped node
        would smuggle never-executed sources into later forced prefixes."""
        oracle_dir, faulted_dir = tmp_path / "oracle", tmp_path / "faulted"
        DampiVerifier(
            wildcard_lattice, 4, DampiConfig(), kwargs=BIG
        ).verify(journal=oracle_dir)
        DampiVerifier(
            wildcard_lattice,
            4,
            DampiConfig(jobs=2, force_jobs=True, fault_plan="raise@flip:0.0"),
            kwargs=BIG,
        ).verify(journal=faulted_dir)
        def keys(journal_dir):
            out = []
            for e in CampaignJournal(journal_dir).run_entries():
                if e.get("key") is not None:
                    out.append(schedule_key(jr.decisions_from_jsonable(e["key"])))
            return out
        oracle_keys, faulted_keys = keys(oracle_dir), keys(faulted_dir)
        assert len(faulted_keys) == len(set(faulted_keys))  # no re-emission
        assert set(faulted_keys) <= set(oracle_keys)


class TestCampaignJournals:
    def test_escalate_resumes_across_stages(self, tmp_path):
        oracle = escalating_verify(wildcard_lattice, 4, kwargs=BIG)
        journal_dir = tmp_path / "j"
        first = escalating_verify(
            wildcard_lattice, 4, kwargs=BIG, journal_dir=journal_dir
        )
        resumed = escalating_verify(
            wildcard_lattice, 4, kwargs=BIG, journal_dir=journal_dir
        )
        assert [s.label for s in resumed.steps] == [s.label for s in oracle.steps]
        for a, b in zip(resumed.steps, oracle.steps):
            assert _canon(a.report) == _canon(b.report)
        for step in resumed.steps:
            assert step.report.journal_stats["executed"] == 0
        assert resumed.stopped_reason == first.stopped_reason

    def test_campaign_cells_resume_from_their_journals(self, tmp_path):
        journal_dir = tmp_path / "j"
        first = run_campaign(
            wildcard_lattice, [3], kwargs=LATTICE, journal_dir=journal_dir
        )
        resumed = run_campaign(
            wildcard_lattice, [3], kwargs=LATTICE, journal_dir=journal_dir
        )
        assert resumed.ok
        for a, b in zip(resumed.cells, first.cells):
            assert a.report.journal_stats["executed"] == 0
            assert _canon(a.report) == _canon(b.report)


class TestSerialization:
    def test_decisions_roundtrip(self):
        d = EpochDecisions(forced={(0, 1): 2, (1, 0): 0}, flip=(0, 1))
        d2 = jr.decisions_from_jsonable(jr.decisions_to_jsonable(d))
        assert schedule_key(d2) == schedule_key(d)

    def test_decisions_roundtrip_no_flip(self):
        d = EpochDecisions(forced={}, flip=None)
        d2 = jr.decisions_from_jsonable(jr.decisions_to_jsonable(d))
        assert d2.flip is None and d2.forced == {}

    def test_outcome_roundtrip(self):
        outcome = frozenset({((0, 1), 2), ((1, 0), 0)})
        assert jr.outcome_from_jsonable(jr.outcome_to_jsonable(outcome)) == outcome

    def test_generator_snapshot_roundtrip(self):
        gen = ScheduleGenerator(bound_k=1)
        gen.seed(
            trace_with(
                [(0, 0, 0), (0, 1, 1)], [(0, 0, 1), (0, 1, 0)], nprocs=3
            )
        )
        gen.next_decisions()
        gen.abandon()  # leave tried/chosen state behind
        snap = jr.snapshot_generator(gen)
        restored = jr.restore_generator(snap)
        assert jr.snapshot_generator(restored) == snap
        # the restored walk emits exactly what the original would
        assert restored.next_decisions() == gen.next_decisions()

    def test_snapshot_refuses_pending_flip(self):
        gen = ScheduleGenerator()
        gen.seed(trace_with([(0, 0, 0)], [(0, 0, 1)], nprocs=2))
        assert gen.next_decisions() is not None
        with pytest.raises(JournalError):
            jr.snapshot_generator(gen)

    def test_config_signature_ignores_execution_knobs(self):
        base = DampiConfig()
        same = DampiConfig(jobs=4, fault_plan="kill@self", journal_fsync=False)
        different = DampiConfig(bound_k=2)
        assert jr.config_signature(3, base) == jr.config_signature(3, same)
        assert jr.config_signature(3, base) != jr.config_signature(3, different)
        assert jr.config_signature(3, base) != jr.config_signature(4, base)
        assert jr.config_signature(3, base) != jr.config_signature(
            3, base, kwargs={"receives": 2}
        )


class TestCliJournal:
    PROG = "repro.workloads.patterns:wildcard_lattice"

    def test_verify_journal_dir_then_resume(self, tmp_path, capsys):
        journal_dir = tmp_path / "j"
        rc = main(
            [
                "verify", self.PROG, "--nprocs", "3",
                "--kwargs", json.dumps(LATTICE),
                "--journal-dir", str(journal_dir),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0 and "journal" in out
        rc = main(["resume", str(journal_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        # resumed a complete journal: everything replayed, nothing executed
        assert "run(s) replayed, 0 executed" in out

    def test_resume_without_meta_errors(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit):
            main(["resume", str(empty)])
