"""Documented limitations, each pinned by a test.

A reproduction should preserve the paper's *weaknesses* as faithfully as
its strengths; these tests pin them down so any behavioural drift is
caught.  Each corresponds to a DESIGN.md / paper section.
"""

import pytest

from repro.clocks.lamport import LamportStamp
from repro.dampi.config import DampiConfig
from repro.dampi.piggyback import PiggybackModule
from repro.dampi.verifier import DampiVerifier
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.runtime import run_program
from repro.pnmpi.module import ToolModule
from repro.workloads.patterns import fig4_program, fig10_program


class TestLamportImprecision:
    """Paper §II-F: cross-coupled patterns lose completeness under LC."""

    def test_fig4_is_the_documented_gap(self):
        lam = DampiVerifier(fig4_program, 4, DampiConfig(clock_impl="lamport")).verify()
        vec = DampiVerifier(fig4_program, 4, DampiConfig(clock_impl="vector")).verify()
        missed = len(vec.outcomes) - len(lam.outcomes)
        assert missed == 2  # both cross matches invisible to Lamport clocks

    def test_dual_lamport_does_not_fix_fig4(self):
        """Dual clocks fix §V (transmit timing), not §II-F (scalar
        ordering): the cross-coupled gap remains."""
        dual = DampiVerifier(
            fig4_program, 4, DampiConfig(clock_impl="lamport_dual")
        ).verify()
        assert dual.interleavings == 1


class TestSectionVOmission:
    """Paper §V / Fig. 10: clock escapes before the wildcard's Wait."""

    def test_single_clock_misses_and_alerts(self):
        rep = DampiVerifier(fig10_program, 3).verify()
        assert rep.interleavings == 1
        assert rep.monitor_report.triggered


class _PairingProbe(ToolModule):
    """Records (payload, stamp) pairs delivered by a piggyback module."""

    name = "pairingprobe"

    def __init__(self, pb: PiggybackModule):
        self.pairs = []
        self.counter = {}
        pb.register(self._provide, self._consume)

    def setup(self, runtime):
        self.counter = {r: 0 for r in range(runtime.nprocs)}
        self.pairs = []

    def _provide(self, proc):
        n = self.counter[proc.world_rank]
        self.counter[proc.world_rank] += 1
        return LamportStamp(n, proc.world_rank)

    def _consume(self, proc, req, stamp):
        self.pairs.append((req.data, stamp.time))


class TestSeparatePiggybackPairingHazard:
    """DESIGN.md §5.3 / piggyback module docstring: when a wildcard and a
    deterministic receive with overlapping selectors are outstanding
    simultaneously, the post-time/completion-time split can mispair stamps
    within one stream.  The inline mechanism is immune.

    The wildcard is posted FIRST (matching the stream's first message) but
    the deterministic receive's shadow receive is posted first, stealing
    the first stamp.
    """

    @staticmethod
    def overlapping(p):
        if p.rank == 0:
            p.world.send("m0", dest=1, tag=5)  # stamp 0
            p.world.send("m1", dest=1, tag=5)  # stamp 1
        else:
            wild = p.world.irecv(source=ANY_SOURCE, tag=5)  # will get m0
            det = p.world.irecv(source=0, tag=5)  # will get m1
            wild.wait()
            det.wait()
            assert wild.data == "m0" and det.data == "m1"

    def _pairs(self, mechanism):
        pb = PiggybackModule(mechanism)
        probe = _PairingProbe(pb)
        run_program(self.overlapping, 2, modules=[probe, pb]).raise_any()
        return dict(probe.pairs)

    def test_inline_mechanism_pairs_correctly(self):
        assert self._pairs("inline") == {"m0": 0, "m1": 1}

    def test_separate_mechanism_mispairs_as_documented(self):
        """The known hazard, pinned: the deterministic receive's pre-posted
        shadow receive takes stamp 0 although its payload is m1.  If this
        test ever fails, the limitation documentation must be updated."""
        pairs = self._pairs("separate")
        assert pairs == {"m0": 1, "m1": 0}  # swapped — the documented hazard


class TestDeterministicSchedulerBias:
    """The paper's motivation: one runtime policy keeps showing one match.
    Our deterministic self run is exactly such a bias — pinned here so the
    quickstart's '0 failures in N plain runs' claim stays true."""

    def test_native_runs_never_hit_the_fig3_bug(self):
        from repro.workloads.patterns import fig3_program

        for _ in range(10):
            run_program(fig3_program, 3).raise_any()
