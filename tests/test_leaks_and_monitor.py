"""Leak checker and §V omission monitor as standalone modules."""

from repro.dampi.config import DampiConfig
from repro.dampi.leaks import LeakCheckModule, LeakReport
from repro.dampi.monitor import OmissionMonitorModule
from repro.dampi.verifier import DampiVerifier
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.runtime import run_program

from tests.conftest import run_ok


def leaks_of(prog, nprocs):
    res = run_ok(prog, nprocs, modules=[LeakCheckModule()])
    return res.artifacts["leaks"]


def alerts_of(prog, nprocs):
    res = run_ok(prog, nprocs, modules=[OmissionMonitorModule()])
    return res.artifacts["monitor"]


class TestLeakChecker:
    def test_clean_program(self):
        def prog(p):
            dup = p.world.dup()
            if p.rank == 0:
                dup.send("x", dest=1)
            elif p.rank == 1:
                dup.recv(source=0)
            dup.free()

        assert leaks_of(prog, 3).clean

    def test_unfreed_dup_is_comm_leak(self):
        def prog(p):
            p.world.dup()

        report = leaks_of(prog, 2)
        assert report.has_comm_leak
        assert len(report.comm_leaks) == 2  # one per rank
        assert not report.has_request_leak

    def test_unfreed_split_is_comm_leak(self):
        def prog(p):
            p.world.split(color=0, key=p.rank)

        assert leaks_of(prog, 2).has_comm_leak

    def test_world_is_not_a_leak(self):
        def prog(p):
            p.world.barrier()

        assert leaks_of(prog, 2).clean

    def test_pending_request_at_finalize(self):
        def prog(p):
            if p.rank == 0:
                p.world.irecv(source=1, tag=77)  # never completed

        report = leaks_of(prog, 2)
        assert report.has_request_leak
        assert "pending at MPI_Finalize" in str(report.request_leaks[0])

    def test_completed_but_unwaited_request(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("m", dest=1)
            else:
                p.world.irecv(source=0)  # matches but is never waited
                p.world.barrier()
            if p.rank == 0:
                p.world.barrier()

        report = leaks_of(prog, 2)
        assert any("never waited" in str(l) for l in report.request_leaks)

    def test_freed_active_request(self):
        def prog(p):
            req = p.world.irecv(source=0, tag=50)
            req.free()
            if p.rank == 0:
                pass

        report = leaks_of(prog, 1)
        assert any("freed while still active" in str(l) for l in report.request_leaks)

    def test_waited_requests_not_leaks(self):
        def prog(p):
            if p.rank == 0:
                reqs = [p.world.isend(i, dest=1) for i in range(3)]
                p.waitall(reqs)
            else:
                for _ in range(3):
                    p.world.recv(source=0)

        assert leaks_of(prog, 2).clean

    def test_report_merge_and_str(self):
        a, b = LeakReport(), LeakReport()
        assert str(a) == "no leaks"
        from repro.dampi.leaks import CommLeak

        b.comm_leaks.append(CommLeak(0, 5, "world.dup"))
        a.merge(b)
        assert a.has_comm_leak and "world.dup" in str(a)


class TestOmissionMonitor:
    def test_send_between_irecv_and_wait(self):
        def prog(p):
            if p.rank == 0:
                req = p.world.irecv(source=ANY_SOURCE)
                p.world.send("escape", dest=1)  # clock escapes here
                req.wait()
            elif p.rank == 1:
                p.world.recv(source=0)
                p.world.send("m", dest=0)

        report = alerts_of(prog, 2)
        assert report.triggered
        assert report.alerts[0].operation == "isend"

    def test_collective_between_irecv_and_wait(self):
        from repro.workloads.patterns import fig10_program

        report = alerts_of(fig10_program, 3)
        assert report.triggered
        assert report.alerts[0].operation == "barrier"

    def test_wait_before_transmission_is_clean(self):
        def prog(p):
            if p.rank == 0:
                req = p.world.irecv(source=ANY_SOURCE)
                req.wait()
                p.world.send("after", dest=1)
            elif p.rank == 1:
                p.world.send("m", dest=0)
                p.world.recv(source=0)

        assert not alerts_of(prog, 2).triggered

    def test_deterministic_irecv_not_monitored(self):
        def prog(p):
            if p.rank == 0:
                req = p.world.irecv(source=1)
                p.world.barrier()
                req.wait()
            else:
                p.world.send("m", dest=0)
                p.world.barrier()

        assert not alerts_of(prog, 2).triggered

    def test_test_completion_closes_window(self):
        def prog(p):
            if p.rank == 0:
                req = p.world.irecv(source=ANY_SOURCE)
                while not req.test()[0]:
                    pass
                p.world.send("after-test", dest=1)
            else:
                p.world.send("m", dest=0)
                p.world.recv(source=0)

        assert not alerts_of(prog, 2).triggered

    def test_request_free_closes_window(self):
        def prog(p):
            if p.rank == 0:
                req = p.world.irecv(source=ANY_SOURCE, tag=3)
                req.free()
                p.world.barrier()
            else:
                p.world.barrier()

        assert not alerts_of(prog, 2).triggered

    def test_alert_counts_outstanding(self):
        def prog(p):
            if p.rank == 0:
                r1 = p.world.irecv(source=ANY_SOURCE, tag=1)
                r2 = p.world.irecv(source=ANY_SOURCE, tag=2)
                p.world.send("boom", dest=1)
                r1.wait()
                r2.wait()
            elif p.rank == 1:
                p.world.recv(source=0)
                p.world.send("a", dest=0, tag=1)
                p.world.send("b", dest=0, tag=2)

        report = alerts_of(prog, 2)
        assert len(report.alerts[0].outstanding_wildcards) == 2


class TestCheckersOnPersistentSession:
    """The persistent replay session reuses module instances across runs
    (their per-run state is reset by ``setup``); the leak checker and the
    omission monitor must keep firing — identically — on pooled runs."""

    def test_leak_check_fires_on_pooled_runs(self):
        from repro.workloads.patterns import orphan_resources_program

        v = DampiVerifier(orphan_resources_program, 3)
        try:
            reports = []
            for _ in range(3):  # runs 2 and 3 execute on the session
                result, _ = v.run_once()
                reports.append(result.artifacts["leaks"])
            assert v._session is not None
        finally:
            v.close()
        first = reports[0]
        assert first.has_comm_leak and first.has_request_leak
        for rep in reports[1:]:  # identical every run: no carry-over, no loss
            assert rep.has_comm_leak and rep.has_request_leak
            assert len(rep.comm_leaks) == len(first.comm_leaks)
            assert len(rep.request_leaks) == len(first.request_leaks)
            assert [str(l) for l in rep.comm_leaks] == [
                str(l) for l in first.comm_leaks
            ]

    def test_monitor_fires_on_pooled_runs(self):
        from repro.workloads.patterns import fig10_program

        v = DampiVerifier(fig10_program, 3)
        try:
            reports = []
            for _ in range(3):
                result, _ = v.run_once()
                reports.append(result.artifacts["monitor"])
            assert v._session is not None
        finally:
            v.close()
        for rep in reports:
            assert rep.triggered
            assert len(rep.alerts) == len(reports[0].alerts)
            assert rep.alerts[0].rank == 1 and rep.alerts[0].operation == "barrier"

    def test_clean_program_stays_clean_on_pooled_runs(self):
        def prog(p):
            dup = p.world.dup()
            dup.barrier()
            dup.free()

        v = DampiVerifier(prog, 2)
        try:
            for _ in range(3):
                result, _ = v.run_once()
                assert result.artifacts["leaks"].clean
                assert not result.artifacts["monitor"].triggered
        finally:
            v.close()
