"""Unit tests: potential-match finalisation and the decisions file."""

import pytest
from hypothesis import given, strategies as st

from repro.clocks.lamport import LamportStamp
from repro.dampi.decisions import EpochDecisions
from repro.dampi.epoch import EpochRecord, PotentialMatch, RunTrace
from repro.dampi.matcher import (
    alternatives_for_epoch,
    compute_alternatives,
    explorable_alternative_sources,
)
from repro.mpi.constants import ANY_TAG


def mk_epoch(rank=0, lc=0, tag=1, matched_source=1, matched_env=100, **kw):
    e = EpochRecord(
        rank=rank, lc=lc, index=0, ctx=0, tag=tag, stamp=LamportStamp(lc + 1), **kw
    )
    e.matched_source = matched_source
    e.matched_env_uid = matched_env
    return e


def mk_match(epoch, source, seq, env_uid=None, tag=1):
    return PotentialMatch(
        epoch=epoch.key,
        source=source,
        env_uid=env_uid if env_uid is not None else 1000 + source * 10 + seq,
        seq=seq,
        tag=tag,
    )


class TestAlternativesForEpoch:
    def test_earliest_per_source_wins(self):
        e = mk_epoch()
        ms = [mk_match(e, 2, 5), mk_match(e, 2, 1), mk_match(e, 2, 3)]
        alts = alternatives_for_epoch(e, ms)
        assert list(alts) == [2]
        assert alts[2].seq == 1

    def test_matched_source_excluded(self):
        e = mk_epoch(matched_source=1)
        ms = [mk_match(e, 1, 0), mk_match(e, 2, 0)]
        assert set(alternatives_for_epoch(e, ms)) == {2}

    def test_matched_envelope_excluded(self):
        e = mk_epoch(matched_source=1, matched_env=777)
        ms = [mk_match(e, 3, 0, env_uid=777)]
        assert alternatives_for_epoch(e, ms) == {}

    def test_multiple_sources_all_kept(self):
        e = mk_epoch(matched_source=5)
        ms = [mk_match(e, s, 0) for s in (1, 2, 3)]
        assert set(alternatives_for_epoch(e, ms)) == {1, 2, 3}

    def test_empty_input(self):
        assert alternatives_for_epoch(mk_epoch(), []) == {}


class TestTraceLevel:
    def _trace(self):
        e0 = mk_epoch(rank=0, lc=0, matched_source=1)
        e1 = mk_epoch(rank=0, lc=1, matched_source=2)
        e1.index = 1
        trace = RunTrace(nprocs=3, epochs={0: [e0, e1]})
        trace.potential_matches = [
            mk_match(e0, 2, 0),
            mk_match(e1, 1, 1),
            mk_match(e1, 1, 0),  # earlier message from 1, same epoch
        ]
        return trace, e0, e1

    def test_compute_alternatives_groups_by_epoch(self):
        trace, e0, e1 = self._trace()
        alts = compute_alternatives(trace)
        assert set(alts[e0.key]) == {2}
        assert set(alts[e1.key]) == {1}
        assert alts[e1.key][1].seq == 0

    def test_explorable_filters_no_explore(self):
        trace, e0, e1 = self._trace()
        e0.explore = False
        out = explorable_alternative_sources(trace)
        assert out[e0.key] == set()
        assert out[e1.key] == {1}

    def test_explorable_filters_unmatched(self):
        trace, e0, e1 = self._trace()
        e1.matched_source = None
        out = explorable_alternative_sources(trace)
        assert out[e1.key] == set()

    def test_wildcard_count(self):
        trace, *_ = self._trace()
        assert trace.wildcard_count == 2

    def test_epoch_by_key(self):
        trace, e0, _ = self._trace()
        assert trace.epoch_by_key(e0.key) is e0
        assert trace.epoch_by_key((9, 9)) is None


class TestDecisions:
    def test_roundtrip_json(self):
        d = EpochDecisions(forced={(0, 1): 2, (3, 7): 0}, flip=(3, 7))
        d2 = EpochDecisions.from_json(d.to_json())
        assert d2.forced == d.forced
        assert d2.flip == (3, 7)

    def test_save_load(self, tmp_path):
        d = EpochDecisions(forced={(1, 4): 3})
        path = tmp_path / "epoch_decisions.json"
        d.save(path)
        assert EpochDecisions.load(path).forced == {(1, 4): 3}

    def test_guided_epoch_per_rank(self):
        d = EpochDecisions(forced={(0, 1): 2, (0, 9): 1, (2, 4): 0})
        assert d.guided_epoch(0) == 9
        assert d.guided_epoch(2) == 4
        assert d.guided_epoch(1) == -1

    def test_source_for(self):
        d = EpochDecisions(forced={(0, 1): 2})
        assert d.source_for(0, 1) == 2
        assert d.source_for(0, 2) is None

    def test_invalid_decision_rejected(self):
        with pytest.raises(ValueError):
            EpochDecisions(forced={(0, -1): 2})
        with pytest.raises(ValueError):
            EpochDecisions(forced={(0, 1): -2})

    def test_bool_and_len(self):
        assert not EpochDecisions()
        d = EpochDecisions(forced={(0, 0): 1})
        assert d and len(d) == 1

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            EpochDecisions.from_json('{"version": 99, "forced": []}')

    @given(
        st.dictionaries(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=1000),
            ),
            st.integers(min_value=0, max_value=50),
            max_size=30,
        )
    )
    def test_roundtrip_property(self, forced):
        d = EpochDecisions(forced=forced)
        assert EpochDecisions.from_json(d.to_json()).forced == forced
