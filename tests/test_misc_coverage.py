"""Odds and ends: report rendering, budgets, error strings, small APIs."""

import pytest

from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier
from repro.errors import AbortError, DeadlockError
from repro.mpi.constants import BUILTIN_OPS, SUM
from repro.mpi.datatypes import BYTE, CHAR, DOUBLE, FLOAT, INT, LONG
from repro.mpi.runtime import run_program
from repro.workloads.patterns import fig3_program, wildcard_lattice

from tests.conftest import run_ok


class TestRunTable:
    def test_table_shows_flips_and_matches(self):
        rep = DampiVerifier(
            wildcard_lattice, 3, kwargs={"receives": 2, "senders": 2}
        ).verify()
        table = rep.run_table()
        assert "self run" in table
        assert "r0@" in table  # match notation
        assert table.count("\n") == rep.interleavings  # header + one row each

    def test_table_limit(self):
        rep = DampiVerifier(
            wildcard_lattice, 4, kwargs={"receives": 3, "senders": 3}
        ).verify()
        table = rep.run_table(limit=5)
        assert "more runs" in table

    def test_table_marks_errors(self):
        rep = DampiVerifier(fig3_program, 3).verify()
        assert "crash" in rep.run_table()


class TestBudgets:
    def test_max_seconds_stops_exploration(self):
        cfg = DampiConfig(max_seconds=0.0)  # budget exhausted immediately
        rep = DampiVerifier(
            wildcard_lattice, 4, cfg, kwargs={"receives": 3, "senders": 3}
        ).verify()
        assert rep.interleavings == 1  # only the self run
        assert rep.truncated

    def test_wall_seconds_recorded(self):
        rep = DampiVerifier(
            wildcard_lattice, 3, kwargs={"receives": 1, "senders": 2}
        ).verify()
        assert rep.wall_seconds >= 0.0


class TestErrorStrings:
    def test_deadlock_lists_blocked_ranks(self):
        e = DeadlockError({0: "wait on recv", 3: "barrier"})
        msg = str(e)
        assert "rank 0: wait on recv" in msg and "rank 3: barrier" in msg

    def test_abort_carries_code(self):
        e = AbortError(2, errorcode=9)
        assert "rank 2" in str(e) and "9" in str(e)

    def test_empty_deadlock(self):
        assert str(DeadlockError()) == "deadlock detected"


class TestBuiltinDatatypesAndOps:
    def test_extents(self):
        assert BYTE.extent == CHAR.extent == 1
        assert INT.extent == FLOAT.extent == 4
        assert LONG.extent == DOUBLE.extent == 8

    def test_builtin_ops_registry(self):
        assert set(BUILTIN_OPS) == {
            "MAX", "MIN", "SUM", "PROD", "LAND", "LOR", "BAND", "BOR",
        }
        assert BUILTIN_OPS["SUM"](2, 3) == 5

    def test_op_repr(self):
        assert "SUM" in repr(SUM)


class TestAdlbIntrospection:
    def test_workers_of_partition(self):
        from repro.adlb import AdlbContext

        def job(p):
            ctx = AdlbContext(p, num_servers=2)
            if ctx.rank == 0:
                assert ctx.workers_of(0) == {2, 4}
                assert ctx.workers_of(1) == {3, 5}
            if ctx.is_server:
                ctx.serve()
            else:
                ctx.finish()
            p.world.barrier()

        run_ok(job, 6)

    def test_stats_counters(self):
        from repro.adlb import AdlbContext

        collected = {}

        def job(p):
            ctx = AdlbContext(p, num_servers=1)
            if ctx.is_server:
                ctx.serve()
            else:
                ctx.put("a")
                ctx.get()
                ctx.finish()
                collected.update(ctx.stats)
            p.world.barrier()

        run_ok(job, 2)
        assert collected["puts"] == 1
        assert collected["gets"] == 2  # the real get + the finish drain


class TestExplorerStats:
    def test_auto_frozen_counter(self):
        from repro.dampi.explorer import ScheduleGenerator

        cfg = DampiConfig(auto_loop_threshold=1)
        v = DampiVerifier(wildcard_lattice, 3, cfg, kwargs={"receives": 3, "senders": 2})
        rep = v.verify()
        assert rep.interleavings == 2  # one explorable epoch

    def test_stats_dict_keys(self):
        from repro.dampi.explorer import ScheduleGenerator
        from tests.test_explorer import trace_with

        g = ScheduleGenerator()
        g.seed(trace_with([(0, 0, 1)], [(0, 0, 2)]))
        assert set(g.stats()) == {
            "path_length",
            "frozen_nodes",
            "open_alternatives",
            "divergences",
            "prunes",
            "replays_saved",
        }


class TestFreeModeWithNewFeatures:
    def test_icollectives_in_free_mode(self):
        def prog(p):
            req = p.world.iallreduce(1, op=SUM)
            req.wait()
            assert req.data == p.size

        for _ in range(3):
            run_ok(prog, 8, mode="free")

    def test_ssend_in_free_mode(self):
        def prog(p):
            if p.rank == 0:
                p.world.ssend("x", dest=1)
            else:
                assert p.world.recv(source=0) == "x"

        for _ in range(3):
            run_ok(prog, 2, mode="free")

    def test_scan_in_free_mode(self):
        def prog(p):
            assert p.world.scan(1, op=SUM) == p.rank + 1

        run_ok(prog, 8, mode="free")
