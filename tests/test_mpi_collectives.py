"""Collective operation semantics."""

import pytest

from repro.errors import MPIError
from repro.mpi.constants import BAND, BOR, LAND, LOR, MAX, MIN, PROD, SUM
from repro.mpi.runtime import run_program

from tests.conftest import run_ok


class TestValues:
    def test_barrier_returns_none(self):
        def prog(p):
            assert p.world.barrier() is None

        run_ok(prog, 4)

    def test_bcast_from_each_root(self):
        def prog(p):
            for root in range(p.size):
                val = p.world.bcast(("payload", root) if p.rank == root else None, root=root)
                assert val == ("payload", root)

        run_ok(prog, 4)

    def test_reduce_sum_at_root_only(self):
        def prog(p):
            out = p.world.reduce(p.rank + 1, op=SUM, root=2)
            if p.world.rank == 2:
                assert out == 10
            else:
                assert out is None

        run_ok(prog, 4)

    @pytest.mark.parametrize(
        "op,expect",
        [(SUM, 6), (PROD, 0), (MAX, 3), (MIN, 0), (LAND, False), (LOR, True)],
    )
    def test_allreduce_ops(self, op, expect):
        def prog(p):
            assert p.world.allreduce(p.rank, op=op) == expect

        run_ok(prog, 4)

    def test_allreduce_bitwise(self):
        def prog(p):
            assert p.world.allreduce(1 << p.rank, op=BOR) == 0b1111
            assert p.world.allreduce(0b1111, op=BAND) == 0b1111

        run_ok(prog, 4)

    def test_allreduce_default_op_is_sum(self):
        def prog(p):
            assert p.world.allreduce(1) == p.size

        run_ok(prog, 5)

    def test_gather_in_rank_order(self):
        def prog(p):
            out = p.world.gather(p.rank * 10, root=1)
            if p.world.rank == 1:
                assert out == [0, 10, 20, 30]
            else:
                assert out is None

        run_ok(prog, 4)

    def test_scatter(self):
        def prog(p):
            data = [f"item{i}" for i in range(p.size)] if p.rank == 0 else None
            assert p.world.scatter(data, root=0) == f"item{p.rank}"

        run_ok(prog, 4)

    def test_allgather(self):
        def prog(p):
            assert p.world.allgather(p.rank**2) == [0, 1, 4, 9]

        run_ok(prog, 4)

    def test_alltoall_transpose(self):
        def prog(p):
            out = p.world.alltoall([(p.rank, j) for j in range(p.size)])
            assert out == [(i, p.rank) for i in range(p.size)]

        run_ok(prog, 3)

    def test_reduce_scatter(self):
        def prog(p):
            out = p.world.reduce_scatter([p.rank] * p.size, op=SUM)
            assert out == sum(range(p.size))

        run_ok(prog, 4)

    def test_scatter_wrong_length_raises(self):
        def prog(p):
            data = ["only", "two"] if p.rank == 0 else None
            p.world.scatter(data, root=0)

        res = run_program(prog, 3)
        assert any(isinstance(e, MPIError) for e in res.primary_errors.values())


class TestPairingAndAgreement:
    def test_collective_kind_mismatch_detected(self):
        def prog(p):
            if p.rank == 0:
                p.world.barrier()
            else:
                p.world.allreduce(1, op=SUM)

        res = run_program(prog, 2)
        assert any(
            isinstance(e, MPIError) and "mismatch" in str(e)
            for e in res.primary_errors.values()
        )

    def test_root_mismatch_detected(self):
        def prog(p):
            p.world.bcast("x", root=p.rank)  # different roots!

        res = run_program(prog, 2)
        assert any(
            isinstance(e, MPIError) and "root mismatch" in str(e)
            for e in res.primary_errors.values()
        )

    def test_op_mismatch_detected(self):
        def prog(p):
            p.world.allreduce(1, op=SUM if p.rank == 0 else MAX)

        res = run_program(prog, 2)
        assert any(
            isinstance(e, MPIError) and "op mismatch" in str(e)
            for e in res.primary_errors.values()
        )

    def test_sequential_collectives_pair_by_ordinal(self):
        def prog(p):
            for i in range(10):
                assert p.world.allreduce(i, op=MAX) == i

        run_ok(prog, 4)


class TestCompletionSemantics:
    def test_bcast_root_does_not_block(self):
        # root broadcasts then produces the value consumed by rank 1's recv;
        # if bcast synchronised, this would deadlock because rank 1 enters
        # its bcast only after receiving.
        def prog(p):
            if p.rank == 0:
                p.world.bcast("b", root=0)
                p.world.send("follow-up", dest=1)
            else:
                assert p.world.recv(source=0) == "follow-up"
                assert p.world.bcast(None, root=0) == "b"

        run_ok(prog, 2)

    def test_reduce_nonroot_does_not_block(self):
        def prog(p):
            if p.rank == 1:
                p.world.reduce(1, op=SUM, root=0)  # must not wait for root
                p.world.send("after-reduce", dest=0)
            else:
                assert p.world.recv(source=1) == "after-reduce"
                assert p.world.reduce(1, op=SUM, root=0) == 2

        run_ok(prog, 2)

    def test_barrier_synchronises(self):
        # A send posted after the barrier can never be consumed by a recv
        # that completed before it: enforced here via virtual times.
        def prog(p):
            p.compute(0.1 * (p.rank + 1))
            p.world.barrier()
            return p.engine.clocks.now(p.rank)

        res = run_ok(prog, 3)
        assert max(res.returns.values()) - min(res.returns.values()) < 1e-4

    def test_missing_participant_deadlocks(self):
        def prog(p):
            if p.rank != 2:
                p.world.barrier()

        res = run_program(prog, 3)
        assert res.deadlocked


class TestCommunicatorCollectives:
    def test_collectives_on_split_comm(self):
        def prog(p):
            sub = p.world.split(color=p.rank % 2, key=p.rank)
            total = sub.allreduce(p.rank, op=SUM)
            # evens: 0+2+4, odds: 1+3+5
            assert total == (6 if p.rank % 2 == 0 else 9)
            sub.free()

        run_ok(prog, 6)

    def test_traffic_isolated_between_comms(self):
        def prog(p):
            dup = p.world.dup()
            if p.rank == 0:
                p.world.send("on-world", dest=1, tag=5)
                dup.send("on-dup", dest=1, tag=5)
            else:
                # receive from the dup first: world's message must not leak
                assert dup.recv(source=0, tag=5) == "on-dup"
                assert p.world.recv(source=0, tag=5) == "on-world"
            dup.free()

        run_ok(prog, 2)
