"""Communicator management: dup, split, free, rank translation."""

import pytest

from repro.errors import InvalidCommunicatorError, InvalidRankError
from repro.mpi.constants import UNDEFINED
from repro.mpi.communicator import CommContext
from repro.mpi.runtime import run_program

from tests.conftest import run_ok


class TestCommContext:
    def test_rank_translation(self):
        ctx = CommContext(5, group=(3, 7, 9))
        assert ctx.rank_of(7) == 1
        assert ctx.world_rank(2) == 9

    def test_rank_translation_errors(self):
        ctx = CommContext(5, group=(3, 7))
        with pytest.raises(InvalidRankError):
            ctx.rank_of(4)
        with pytest.raises(InvalidRankError):
            ctx.world_rank(2)

    def test_send_seq_per_stream(self):
        ctx = CommContext(1, group=(0, 1, 2))
        assert ctx.next_send_seq(0, 1) == 0
        assert ctx.next_send_seq(0, 1) == 1
        assert ctx.next_send_seq(0, 2) == 0  # independent stream

    def test_fully_freed(self):
        ctx = CommContext(1, group=(0, 1))
        assert not ctx.is_fully_freed()
        ctx.freed_by.update({0, 1})
        assert ctx.is_fully_freed()


class TestDup:
    def test_dup_same_group_fresh_context(self):
        def prog(p):
            dup = p.world.dup()
            assert dup.size == p.world.size
            assert dup.rank == p.world.rank
            assert dup.ctx != p.world.ctx
            dup.free()

        run_ok(prog, 3)

    def test_all_ranks_share_the_dup_context(self):
        def prog(p):
            dup = p.world.dup()
            ids = p.world.allgather(dup.ctx)
            assert len(set(ids)) == 1
            dup.free()

        run_ok(prog, 4)


class TestSplit:
    def test_split_groups_and_ranks(self):
        def prog(p):
            sub = p.world.split(color=p.rank // 2, key=p.rank)
            assert sub.size == 2
            assert sub.rank == p.rank % 2
            sub.free()

        run_ok(prog, 6)

    def test_split_key_orders_ranks(self):
        def prog(p):
            # reversed key: higher world rank gets lower sub rank
            sub = p.world.split(color=0, key=-p.rank)
            assert sub.rank == p.size - 1 - p.rank
            sub.free()

        run_ok(prog, 4)

    def test_split_undefined_yields_none(self):
        def prog(p):
            sub = p.world.split(color=UNDEFINED if p.rank == 0 else 1, key=0)
            if p.rank == 0:
                assert sub is None
            else:
                assert sub.size == p.size - 1
                sub.free()

        run_ok(prog, 4)

    def test_split_negative_color_rejected(self):
        def prog(p):
            p.world.split(color=-3, key=0)

        res = run_program(prog, 2)
        assert not res.ok

    def test_nested_split(self):
        def prog(p):
            half = p.world.split(color=p.rank // 4, key=p.rank)
            quarter = half.split(color=half.rank // 2, key=half.rank)
            assert quarter.size == 2
            total = quarter.allreduce(1)
            assert total == 2
            quarter.free()
            half.free()

        run_ok(prog, 8)


class TestFree:
    def test_use_after_local_free_rejected(self):
        def prog(p):
            dup = p.world.dup()
            dup.free()
            dup.barrier()

        res = run_program(prog, 2)
        assert any(
            isinstance(e, InvalidCommunicatorError)
            for e in res.primary_errors.values()
        )

    def test_double_free_rejected(self):
        def prog(p):
            dup = p.world.dup()
            p.comm_free(dup)
            p.comm_free(dup)

        res = run_program(prog, 2)
        assert any(
            isinstance(e, InvalidCommunicatorError)
            for e in res.primary_errors.values()
        )

    def test_traffic_on_fully_freed_context_rejected(self):
        def prog(p):
            dup = p.world.dup()
            ctx = dup.context
            p.world.barrier()
            p.comm_free(dup)
            p.world.barrier()  # now everyone freed it
            if p.rank == 0:
                p.engine.pmpi_isend(0, ctx.ctx, "zombie", 1, 0)

        res = run_program(prog, 2)
        assert any(
            isinstance(e, InvalidCommunicatorError)
            for e in res.primary_errors.values()
        )
