"""Point-to-point semantics of the simulated MPI runtime."""

import pytest

from repro.errors import (
    DeadlockError,
    InvalidRankError,
    InvalidRequestError,
    InvalidTagError,
)
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.mpi.request import Status
from repro.mpi.runtime import run_program

from tests.conftest import run_ok


class TestBasicTransfer:
    def test_send_recv_payload(self, sched_mode):
        def prog(p):
            if p.rank == 0:
                p.world.send({"k": [1, 2]}, dest=1, tag=4)
            else:
                st = Status()
                got = p.world.recv(source=0, tag=4, status=st)
                assert got == {"k": [1, 2]}
                assert st.source == 0 and st.tag == 4

        run_ok(prog, 2, mode=sched_mode)

    def test_isend_irecv_wait(self):
        def prog(p):
            if p.rank == 0:
                req = p.world.isend("x", dest=1)
                st = req.wait()
                assert req.is_complete
            else:
                req = p.world.irecv(source=0)
                st = req.wait()
                assert req.data == "x"
                assert st.get_count() == 1

        run_ok(prog, 2)

    def test_self_send(self):
        def prog(p):
            req = p.world.irecv(source=0, tag=1)
            p.world.send("me", dest=0, tag=1)
            assert req.wait().source == 0
            assert req.data == "me"

        run_ok(prog, 1)

    def test_proc_null_transfers_complete_immediately(self):
        def prog(p):
            p.world.send("void", dest=PROC_NULL)
            got = p.world.recv(source=PROC_NULL)
            assert got is None

        run_ok(prog, 1)

    def test_get_count_of_list_payload(self):
        def prog(p):
            if p.rank == 0:
                p.world.send([1, 2, 3, 4], dest=1)
            else:
                st = Status()
                p.world.recv(source=0, status=st)
                assert st.get_count() == 4

        run_ok(prog, 2)


class TestTags:
    def test_tag_selectivity(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("a", dest=1, tag=1)
                p.world.send("b", dest=1, tag=2)
            else:
                # receive tag 2 first although tag 1 was sent first
                assert p.world.recv(source=0, tag=2) == "b"
                assert p.world.recv(source=0, tag=1) == "a"

        run_ok(prog, 2)

    def test_any_tag_takes_send_order(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("first", dest=1, tag=9)
                p.world.send("second", dest=1, tag=3)
            else:
                st = Status()
                assert p.world.recv(source=0, tag=ANY_TAG, status=st) == "first"
                assert st.tag == 9
                assert p.world.recv(source=0, tag=ANY_TAG) == "second"

        run_ok(prog, 2)

    def test_invalid_tag_rejected(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=1, tag=-5)

        res = run_program(prog, 2)
        assert any(isinstance(e, InvalidTagError) for e in res.primary_errors.values())

    def test_any_tag_invalid_on_send(self):
        def prog(p):
            p.world.send("x", dest=0, tag=ANY_TAG)

        res = run_program(prog, 1)
        assert any(isinstance(e, InvalidTagError) for e in res.primary_errors.values())


class TestNonOvertaking:
    def test_same_tag_fifo(self, sched_mode):
        def prog(p):
            if p.rank == 0:
                for i in range(20):
                    p.world.send(i, dest=1, tag=7)
            else:
                got = [p.world.recv(source=0, tag=7) for _ in range(20)]
                assert got == list(range(20))

        run_ok(prog, 2, mode=sched_mode)

    def test_wildcard_respects_per_source_order(self):
        def prog(p):
            if p.rank in (0, 1):
                for i in range(5):
                    p.world.send((p.rank, i), dest=2, tag=1)
            else:
                seen = {0: [], 1: []}
                for _ in range(10):
                    src, i = p.world.recv(source=ANY_SOURCE, tag=1)
                    seen[src].append(i)
                assert seen[0] == list(range(5))
                assert seen[1] == list(range(5))

        run_ok(prog, 3)

    def test_posted_receives_match_in_post_order(self):
        def prog(p):
            if p.rank == 0:
                r1 = p.world.irecv(source=1, tag=5)
                r2 = p.world.irecv(source=1, tag=5)
                # complete out of order: r2 still gets the *second* message
                p.world.send("go", dest=1, tag=0)
                assert r2.wait() and r2.data == "m2"
                assert r1.wait() and r1.data == "m1"
            else:
                p.world.recv(source=0, tag=0)
                p.world.send("m1", dest=0, tag=5)
                p.world.send("m2", dest=0, tag=5)

        run_ok(prog, 2)


class TestRequests:
    def test_double_wait_rejected(self):
        def prog(p):
            if p.rank == 0:
                p.world.send(1, dest=1)
            else:
                req = p.world.irecv(source=0)
                req.wait()
                req.wait()

        res = run_program(prog, 2)
        assert any(
            isinstance(e, InvalidRequestError) for e in res.primary_errors.values()
        )

    def test_wait_on_other_ranks_request_rejected(self):
        shared = {}

        def prog(p):
            if p.rank == 0:
                shared["req"] = p.world.irecv(source=1)
                p.world.send("token", dest=1, tag=9)
                shared["req"].wait()
            else:
                p.world.recv(source=0, tag=9)
                p.engine.pmpi_wait(1, shared["req"])

        res = run_program(prog, 2)
        assert any(
            isinstance(e, InvalidRequestError) for e in res.primary_errors.values()
        )

    def test_test_polls_to_completion(self):
        def prog(p):
            if p.rank == 0:
                req = p.world.irecv(source=1)
                polls = 0
                while True:
                    flag, st = req.test()
                    if flag:
                        break
                    polls += 1
                assert req.data == "eventually"
            else:
                p.world.send("eventually", dest=0)

        run_ok(prog, 2)

    def test_waitall_mixed_kinds(self):
        def prog(p):
            if p.rank == 0:
                reqs = [p.world.irecv(source=1) for _ in range(3)]
                reqs += [p.world.isend(i, dest=1) for i in range(2)]
                statuses = p.waitall(reqs)
                assert len(statuses) == 5
                assert sorted(r.data for r in reqs[:3]) == [0, 1, 2]
            else:
                for i in range(3):
                    p.world.send(i, dest=0)
                for _ in range(2):
                    p.world.recv(source=0)

        run_ok(prog, 2)

    def test_waitany_returns_a_completed_index(self):
        def prog(p):
            if p.rank == 0:
                never = p.world.irecv(source=1, tag=99)  # never sent
                soon = p.world.irecv(source=1, tag=1)
                idx, st = p.waitany([never, soon])
                assert idx == 1 and soon.data == "hi"
                never.free()
            else:
                p.world.send("hi", dest=0, tag=1)

        run_ok(prog, 2)

    def test_request_free_then_wait_rejected(self):
        def prog(p):
            req = p.world.irecv(source=0, tag=1)
            req.free()
            req.wait()

        res = run_program(prog, 1)
        assert any(
            isinstance(e, InvalidRequestError) for e in res.primary_errors.values()
        )


class TestWildcards:
    def test_any_source_any_tag(self):
        def prog(p):
            if p.rank == 2:
                st = Status()
                vals = set()
                for _ in range(2):
                    vals.add(p.world.recv(source=ANY_SOURCE, tag=ANY_TAG, status=st))
                assert vals == {"from0", "from1"}
            elif p.rank == 0:
                p.world.send("from0", dest=2, tag=10)
            else:
                p.world.send("from1", dest=2, tag=20)

        run_ok(prog, 3)

    @staticmethod
    def _race_two_senders(p):
        """Both senders' messages are queued (barrier) before rank 0 posts
        its wildcard — the policy must arbitrate."""
        if p.rank == 0:
            p.world.barrier()
            st = Status()
            p.world.recv(source=ANY_SOURCE, status=st)
            p.world.recv(source=ANY_SOURCE)
            return st.source
        p.world.send(p.rank, dest=0)
        p.world.barrier()
        return None

    def test_policy_lowest_vs_highest(self):
        low = run_ok(self._race_two_senders, 3, policy="lowest_rank")
        high = run_ok(self._race_two_senders, 3, policy="highest_rank")
        assert low.returns[0] == 1
        assert high.returns[0] == 2

    def test_seeded_random_policy_is_reproducible(self):
        a = run_ok(self._race_two_senders, 3, policy="random:42").returns[0]
        b = run_ok(self._race_two_senders, 3, policy="random:42").returns[0]
        assert a == b


class TestErrors:
    def test_rank_out_of_range(self):
        def prog(p):
            p.world.send("x", dest=5)

        res = run_program(prog, 2)
        assert any(isinstance(e, InvalidRankError) for e in res.primary_errors.values())

    def test_head_to_head_deadlock(self, sched_mode):
        def prog(p):
            p.world.recv(source=1 - p.rank)

        res = run_program(prog, 2, mode=sched_mode)
        assert res.deadlocked
        assert set(res.deadlock.blocked) == {0, 1}

    def test_one_rank_waits_forever(self):
        def prog(p):
            if p.rank == 0:
                p.world.recv(source=1, tag=42)  # never sent

        res = run_program(prog, 2)
        assert res.deadlocked

    def test_sendrecv_avoids_exchange_deadlock(self):
        def prog(p):
            other = 1 - p.rank
            got = p.world.sendrecv(f"from{p.rank}", dest=other, source=other)
            assert got == f"from{other}"

        run_ok(prog, 2)

    def test_abort_kills_all_ranks(self):
        def prog(p):
            if p.rank == 0:
                p.abort(3)
            else:
                p.world.recv(source=0)

        res = run_program(prog, 2)
        assert not res.ok
        assert any(
            type(e).__name__ == "AbortError" for e in res.primary_errors.values()
        )


class TestVirtualTime:
    def test_compute_advances_makespan(self):
        def prog(p):
            p.compute(0.5)

        res = run_ok(prog, 2)
        assert res.makespan >= 0.5

    def test_message_adds_latency(self):
        def prog(p):
            if p.rank == 0:
                p.world.send(b"x" * 1000, dest=1)
            else:
                p.world.recv(source=0)

        res = run_ok(prog, 2)
        assert res.makespan > 2.0e-6  # at least one latency

    def test_unbalanced_compute_sets_makespan(self):
        def prog(p):
            p.compute(1.0 if p.rank == 1 else 0.001)

        res = run_ok(prog, 3)
        assert 1.0 <= res.makespan < 1.1
