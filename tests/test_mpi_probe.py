"""Probe and iprobe semantics."""

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.runtime import run_program

from tests.conftest import run_ok


class TestProbe:
    def test_probe_reports_without_consuming(self):
        def prog(p):
            if p.rank == 0:
                p.world.send([1, 2, 3], dest=1, tag=8)
            else:
                st = p.world.probe(source=0, tag=8)
                assert st.source == 0 and st.tag == 8
                assert st.get_count() == 3
                # probing again sees the same message; it was not consumed
                st2 = p.world.probe(source=0, tag=8)
                assert st2.source == 0
                assert p.world.recv(source=0, tag=8) == [1, 2, 3]

        run_ok(prog, 2)

    def test_probe_blocks_until_message(self):
        def prog(p):
            if p.rank == 0:
                p.compute(0.001)
                p.world.send("late", dest=1)
            else:
                st = p.world.probe(source=ANY_SOURCE, tag=ANY_TAG)
                assert st.source == 0
                p.world.recv(source=st.source, tag=st.tag)

        run_ok(prog, 2)

    def test_probe_then_targeted_recv(self):
        """The probe+recv idiom: learn the source, then receive exactly it."""

        def prog(p):
            if p.rank == 2:
                for _ in range(2):
                    st = p.world.probe(source=ANY_SOURCE)
                    got = p.world.recv(source=st.source, tag=st.tag)
                    assert got == f"from{st.source}"
            else:
                p.world.send(f"from{p.rank}", dest=2)

        run_ok(prog, 3)

    def test_probe_deadlock_detected(self):
        def prog(p):
            if p.rank == 0:
                p.world.probe(source=1, tag=5)  # never sent

        res = run_program(prog, 2)
        assert res.deadlocked


class TestIprobe:
    def test_iprobe_false_when_empty(self):
        def prog(p):
            flag, st = p.world.iprobe(source=ANY_SOURCE)
            assert not flag and st is None

        run_ok(prog, 2)

    def test_iprobe_true_after_send(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=1, tag=3)
                p.world.barrier()
            else:
                p.world.barrier()
                flag, st = p.world.iprobe(source=0, tag=3)
                assert flag and st.tag == 3
                p.world.recv(source=0, tag=3)

        run_ok(prog, 2)

    def test_iprobe_poll_loop_makes_progress(self):
        """An iprobe polling loop must not livelock the deterministic
        scheduler (iprobe is a scheduling point)."""

        def prog(p):
            if p.rank == 0:
                while True:
                    flag, st = p.world.iprobe(source=1)
                    if flag:
                        break
                assert p.world.recv(source=1) == "found"
            else:
                p.compute(1e-4)
                p.world.send("found", dest=0)

        run_ok(prog, 2)

    def test_iprobe_tag_filter(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("a", dest=1, tag=1)
                p.world.barrier()
            else:
                p.world.barrier()
                flag, _ = p.world.iprobe(source=0, tag=2)
                assert not flag
                flag, _ = p.world.iprobe(source=0, tag=1)
                assert flag
                p.world.recv(source=0, tag=1)

        run_ok(prog, 2)
