"""The observability layer: tracer, metrics, exporters, progress, and
their integration with the verifier."""

from __future__ import annotations

import json

import pytest

from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier
from repro.obs import (
    NULL_TRACER,
    Event,
    MetricsRegistry,
    ProgressReporter,
    Tracer,
    deterministic_view,
    event_signature,
)
from repro.obs.export import (
    JSONL_FORMAT,
    chrome_trace,
    read_events_jsonl,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.workloads.patterns import wildcard_lattice


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestTracer:
    def test_instant_records_fields(self):
        clk = FakeClock()
        tr = Tracer(clock=clk)
        clk.advance(1.5)
        tr.instant("match", "engine", rank=2, src=1, tag=7)
        (e,) = tr.drain()
        assert e.name == "match" and e.cat == "engine" and e.ph == "i"
        assert e.ts == 1.5 and e.rank == 2
        assert e.arg("src") == 1 and e.arg("tag") == 7
        assert e.arg("missing", "d") == "d"

    def test_args_are_sorted_tuples(self):
        tr = Tracer(clock=FakeClock())
        tr.instant("x", "c", z=1, a=2)
        (e,) = tr.drain()
        assert e.args == (("a", 2), ("z", 1))

    def test_span_produces_complete_event(self):
        clk = FakeClock()
        tr = Tracer(clock=clk)
        with tr.span("work", "sched", run=3):
            clk.advance(0.25)
        (e,) = tr.drain()
        assert e.ph == "X" and e.ts == 0.0 and e.dur == 0.25 and e.run == 3

    def test_ring_overflow_drops_oldest_and_counts(self):
        tr = Tracer(buffer=4, clock=FakeClock())
        for i in range(7):
            tr.instant(f"e{i}", "c")
        assert tr.dropped == 3 and len(tr) == 4
        assert [e.name for e in tr.drain()] == ["e3", "e4", "e5", "e6"]

    def test_reset_rebases_epoch_and_clears(self):
        clk = FakeClock()
        tr = Tracer(clock=clk)
        tr.instant("a", "c")
        clk.advance(2.0)
        tr.reset()
        tr.instant("b", "c")
        (e,) = tr.drain()
        assert e.name == "b" and e.ts == 0.0
        assert tr.dropped == 0

    def test_with_run_rebases_and_relabels(self):
        e = Event(name="n", cat="c", ts=0.5, rank=1)
        r = e.with_run(9, ts_offset=10.0)
        assert r.run == 9 and r.ts == 10.5 and r.rank == 1 and r.name == "n"

    def test_signature_strips_clock_fields_only(self):
        a = [Event("n", "c", ts=1.0, dur=2.0, ph="X", rank=0, args=(("k", 1),))]
        b = [Event("n", "c", ts=9.0, dur=0.1, ph="X", rank=0, args=(("k", 1),))]
        c = [Event("n", "c", ts=1.0, dur=2.0, ph="X", rank=1, args=(("k", 1),))]
        assert event_signature(a) == event_signature(b)
        assert event_signature(a) != event_signature(c)

    def test_null_tracer_is_inert(self):
        NULL_TRACER.instant("x", "c", rank=0, k=1)
        NULL_TRACER.complete("x", "c", 0.0)
        NULL_TRACER.emit(Event("x", "c", ts=0.0))
        with NULL_TRACER.span("x", "c"):
            pass
        NULL_TRACER.reset()
        assert NULL_TRACER.drain() == []
        assert len(NULL_TRACER) == 0 and not NULL_TRACER.enabled


class TestMetrics:
    def test_counter_and_gauge(self):
        m = MetricsRegistry()
        m.counter("a").inc()
        m.counter("a").inc(4)
        m.gauge("g").set(7)
        snap = m.snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 7

    def test_histogram_edges_are_upper_inclusive(self):
        m = MetricsRegistry()
        h = m.histogram("h", (1, 2, 4))
        for v in (0, 1, 2, 3, 4, 100):
            h.observe(v)
        snap = m.snapshot()["histograms"]["h"]
        # buckets: <=1, <=2, <=4, overflow
        assert snap["boundaries"] == [1, 2, 4]
        assert snap["counts"] == [2, 1, 2, 1]
        assert snap["count"] == 6 and snap["sum"] == 110

    def test_histogram_reregistration_mismatch_raises(self):
        m = MetricsRegistry()
        m.histogram("h", (1, 2))
        assert m.histogram("h", (1, 2)) is m.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            m.histogram("h", (1, 3))

    def test_merge_snapshot_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for m, n in ((a, 2), (b, 3)):
            m.counter("c").inc(n)
            m.gauge("g").set(n)
            m.histogram("h", (1, 10)).observe(n)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 3  # gauges overwrite
        assert snap["histograms"]["h"]["counts"] == [0, 2, 0]
        assert snap["histograms"]["h"]["sum"] == 5

    def test_deterministic_view_filters_env_namespaces(self):
        m = MetricsRegistry()
        m.counter("engine.matches").inc()
        m.counter("exec.submitted").inc()
        m.gauge("wall.seconds").set(1.2)
        m.gauge("campaign.depth").set(3)
        view = deterministic_view(m.snapshot())
        assert "engine.matches" in view["counters"]
        assert "exec.submitted" not in view["counters"]
        assert "wall.seconds" not in view["gauges"]
        assert "campaign.depth" in view["gauges"]


class TestExporters:
    def _stream(self):
        return [
            Event("run", "campaign", ts=0.0, ph="X", dur=0.5, run=0),
            Event("wildcard_match", "match", ts=0.1, rank=1, run=0,
                  args=(("src", 2),)),
            Event("pool_submit", "sched", ts=0.2, args=(("flip", (1, 0)),)),
        ]

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(self._stream(), path, header={"program": "p"})
        header, events = read_events_jsonl(path)
        assert header["format"] == JSONL_FORMAT and header["program"] == "p"
        # args round-trip through JSON: tuples become lists
        assert event_signature(events)[:2] == event_signature(self._stream())[:2]
        assert [e.name for e in events] == ["run", "wildcard_match", "pool_submit"]

    def test_chrome_trace_shape(self):
        doc = chrome_trace(self._stream(), label="demo", nprocs=2)
        evs = doc["traceEvents"]
        meta = [e for e in evs if e["ph"] == "M"]
        names = {
            e["tid"]: e["args"]["name"]
            for e in meta if e["name"] == "thread_name"
        }
        # lane 0 = scheduler, lane rank+1 per rank
        assert names[0] == "scheduler" and names[1] == "rank 0" and names[2] == "rank 1"
        span = next(e for e in evs if e["name"] == "run")
        assert span["ph"] == "X" and span["dur"] == 0.5e6 and span["pid"] == 1
        inst = next(e for e in evs if e["name"] == "wildcard_match")
        assert inst["tid"] == 2 and inst["ts"] == 0.1e6 and inst["s"] == "t"
        assert inst["args"]["run"] == 0

    def test_chrome_trace_file_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._stream(), path)
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)


class TestProgress:
    def test_throttles_by_interval(self):
        clk = FakeClock()
        lines = []

        class Sink:
            def write(self, s):
                lines.append(s)

        p = ProgressReporter(1.0, stream=Sink(), clock=clk)
        assert p.tick(1, 5, 2)  # first tick always fires
        assert not p.tick(2, 4, 2)
        clk.advance(1.1)
        assert p.tick(3, 3, 2, cache_hit_rate=0.5, eta_seconds=9.0)
        assert p.lines_written == 2
        assert "runs 3 done / 3 queued" in lines[-1]
        assert "cache 50% hit" in lines[-1] and "eta ~9.0s" in lines[-1]

    def test_final_skipped_on_fast_silent_campaign(self):
        lines = []

        class Sink:
            def write(self, s):
                lines.append(s)

        p = ProgressReporter(10.0, stream=Sink(), clock=FakeClock())
        p.final(3, 0, wall_seconds=0.1)
        assert lines == []
        p.tick(1, 1, 1, force=True)
        p.final(3, 1, wall_seconds=0.1)
        assert "done: 3 runs, 1 error(s)" in lines[-1]


class TestMergeTick:
    """Satellite: a distributed campaign emits ONE aggregated heartbeat
    line for the whole fleet, not one line per worker."""

    def _reporter(self):
        clk = FakeClock()
        lines = []

        class Sink:
            def write(self, s):
                lines.append(s)

        return ProgressReporter(1.0, stream=Sink(), clock=clk), clk, lines

    def test_one_line_aggregates_the_fleet(self):
        p, clk, lines = self._reporter()
        clk.advance(5.0)
        frames = [
            {"worker": 2, "runs": 7, "seen": 4.5},
            {"worker": 1, "runs": 3, "seen": 5.0},
        ]
        assert p.merge_tick(frames, active_leases=2, pending_leases=4)
        assert len(lines) == 1
        line = lines[0]
        assert "workers 2" in line
        assert "runs 10" in line  # summed across the fleet
        assert "leases 2 active / 4 pending" in line
        # lag column is per worker, id-sorted
        assert "w1 0.0s" in line and "w2 0.5s" in line

    def test_throttles_like_tick(self):
        p, clk, lines = self._reporter()
        frames = [{"worker": 1, "runs": 1, "seen": 0.0}]
        assert p.merge_tick(frames, 1, 0)
        assert not p.merge_tick(frames, 1, 0)  # inside the interval
        clk.advance(1.1)
        assert p.merge_tick(frames, 1, 0)
        assert p.lines_written == 2

    def test_rate_reflects_fleet_run_delta(self):
        p, clk, lines = self._reporter()
        p.merge_tick([{"worker": 1, "runs": 0, "seen": 0.0}], 1, 0)
        clk.advance(2.0)
        p.merge_tick(
            [
                {"worker": 1, "runs": 5, "seen": 2.0},
                {"worker": 2, "runs": 5, "seen": 2.0},
            ],
            2,
            0,
        )
        assert "runs 10 (5.0/s)" in lines[-1]  # 10 runs over 2 seconds

    def test_workers_without_seen_skip_lag_column(self):
        p, clk, lines = self._reporter()
        p.merge_tick([{"worker": 1, "runs": 0}], 1, 0)
        assert "lag" not in lines[-1]


class TestVerifierIntegration:
    def _verify(self, **cfg):
        v = DampiVerifier(
            wildcard_lattice, 3,
            DampiConfig(**cfg),
            kwargs={"receives": 2, "senders": 2},
        )
        return v, v.verify()

    def test_tracing_off_by_default_and_no_events(self):
        _, rep = self._verify()
        assert rep.events == []
        assert rep.telemetry["events"]["enabled"] is False
        assert rep.telemetry["metrics"]["counters"]["campaign.runs"] == 4

    def test_tracing_on_captures_run_spans_and_rank_events(self):
        _, rep = self._verify(trace_events=True)
        assert rep.telemetry["events"]["enabled"] is True
        assert rep.telemetry["events"]["captured"] == len(rep.events) > 0
        spans = [e for e in rep.events if e.name == "run"]
        assert [e.run for e in spans] == [0, 1, 2, 3]
        matches = [e for e in rep.events if e.name == "wildcard_match"]
        assert matches and all(e.rank is not None for e in matches)
        # merged per-run events carry their consuming run's index
        assert all(e.run is not None for e in matches)

    def test_close_is_idempotent(self):
        v, _ = self._verify()
        v.close()
        v.close()  # verify() already closed once; two more must be safe

    def test_close_safe_on_partially_constructed_instance(self):
        v = DampiVerifier.__new__(DampiVerifier)
        v.close()  # no _session attribute at all

    def test_serial_event_streams_deterministic_modulo_timestamps(self):
        _, a = self._verify(trace_events=True)
        _, b = self._verify(trace_events=True)
        assert event_signature(a.events) == event_signature(b.events)
        assert [e.ts for e in a.events] != [] # streams are non-trivial
