"""Line-rate telemetry: sampling determinism, binary streams, overflow.

The tentpole contracts of the ring-tracer rebuild:

- full event payloads may be *sampled* (1 in N replays) but per-name
  ``events.*`` counters stay exact and bit-identical at any rate, any
  ``--jobs`` setting;
- the sampled stream at rate N is exactly the rate-1 stream filtered to
  the sampled runs (the capture decision is a pure function of the
  schedule signature);
- the binary ``.revt`` encoding round-trips to the same events as the
  JSONL exporter;
- ring overflow drops payloads, never counts;
- prefix checkpoints compose with tracing: a restored run's stream and
  counters are bit-identical to full re-execution, zoo-wide.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier
from repro.obs import (
    Event,
    Tracer,
    decode_events,
    deterministic_view,
    encode_events,
    event_signature,
    read_events_binary,
    write_events_binary,
)
from repro.obs.export import read_events_jsonl, write_events_jsonl
from repro.obs.progress import ProgressReporter
from repro.obs.stats import (
    JournalStatsError,
    journal_follow_line,
    journal_progress,
    render_journal_summary,
)
from repro.workloads.bugzoo import ZOO
from repro.workloads.matmult import matmult_program
from repro.workloads.patterns import wildcard_lattice

MATMULT_KW = {"n": 4, "blocks_per_slave": 2}
LATTICE_KW = {"receives": 2, "senders": 2}


def _verify(program, nprocs, kwargs=None, **cfg):
    return DampiVerifier(
        program, nprocs, DampiConfig(**cfg), kwargs=dict(kwargs or {})
    ).verify()


def _canon(report) -> dict:
    d = json.loads(report.to_json())
    d.pop("wall_seconds", None)
    d.pop("telemetry", None)
    return d


def _sig(events, drop_cats=("sched",)):
    """Stream signature minus environment-dependent categories."""
    return event_signature(e for e in events if e.cat not in drop_cats)


def _event_counters(report) -> dict:
    counters = report.telemetry["metrics"]["counters"]
    return {k: v for k, v in counters.items() if k.startswith("events.")}


# --------------------------------------------------------------------- #
# sampling                                                               #
# --------------------------------------------------------------------- #


class TestSampling:
    def test_sampled_stream_is_the_filtered_rate1_stream(self):
        rate1 = _verify(
            wildcard_lattice, 3, LATTICE_KW, trace_events=True
        )
        rate2 = _verify(
            wildcard_lattice, 3, LATTICE_KW,
            trace_events=True, trace_sample_every=2,
        )
        # which runs kept payloads at rate 2: the runs with per-run
        # (non-campaign) events in the merged stream
        captured = {
            e.run for e in rate2.events
            if e.cat not in ("campaign", "sched") and e.run is not None
        }
        assert 0 in captured  # the self run is always captured
        filtered = [
            e for e in rate1.events
            if e.cat in ("campaign",) or e.run in captured
        ]
        assert _sig(rate2.events) == _sig(filtered)

    def test_sampling_is_deterministic(self):
        a = _verify(
            wildcard_lattice, 3, LATTICE_KW,
            trace_events=True, trace_sample_every=3,
        )
        b = _verify(
            wildcard_lattice, 3, LATTICE_KW,
            trace_events=True, trace_sample_every=3,
        )
        assert _sig(a.events) == _sig(b.events)
        assert (
            a.telemetry["events"]["sampled_runs"]
            == b.telemetry["events"]["sampled_runs"]
        )

    @pytest.mark.parametrize("rate", [2, 3, 7])
    def test_event_totals_exact_at_any_rate(self, rate):
        full = _verify(wildcard_lattice, 3, LATTICE_KW, trace_events=True)
        sampled = _verify(
            wildcard_lattice, 3, LATTICE_KW,
            trace_events=True, trace_sample_every=rate,
        )
        assert _event_counters(sampled) == _event_counters(full)
        assert sampled.telemetry["events"]["sample_every"] == rate
        assert (
            sampled.telemetry["events"]["sampled_runs"]
            <= full.telemetry["events"]["sampled_runs"]
        )

    def test_sampled_signature_identical_across_jobs(self):
        serial = _verify(
            wildcard_lattice, 3, LATTICE_KW,
            trace_events=True, trace_sample_every=2,
        )
        pooled = _verify(
            wildcard_lattice, 3, LATTICE_KW,
            trace_events=True, trace_sample_every=2,
            jobs=2, force_jobs=True,
        )
        assert _sig(serial.events) == _sig(pooled.events)
        assert deterministic_view(
            serial.telemetry["metrics"]
        ) == deterministic_view(pooled.telemetry["metrics"])

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            DampiConfig(trace_sample_every=0)


# --------------------------------------------------------------------- #
# binary encoding                                                        #
# --------------------------------------------------------------------- #


def _random_event(rng: random.Random) -> Event:
    def value():
        kind = rng.randrange(7)
        if kind == 0:
            return None
        if kind == 1:
            return rng.choice([True, False])
        if kind == 2:
            return rng.randint(-(2 ** 40), 2 ** 40)
        if kind == 3:
            return rng.uniform(-1e6, 1e6)
        if kind == 4:
            return rng.choice(["", "x", "flip", "événement", "a" * 50])
        if kind == 5:
            return [rng.randint(-5, 5) for _ in range(rng.randrange(4))]
        return (rng.randint(0, 9), rng.choice(["a", "b"]))

    span = rng.random() < 0.4
    return Event(
        name=rng.choice(["alpha", "beta", "gamma_event"]),
        cat=rng.choice(["match", "pb", "dist"]),
        ts=rng.uniform(0, 100),
        ph="X" if span else "i",
        dur=rng.uniform(0, 5) if span else 0.0,
        rank=rng.choice([None, 0, 1, 7]),
        run=rng.choice([None, 0, 3, 1000]),
        args=tuple(
            sorted(
                {f"k{i}": value() for i in range(rng.randrange(4))}.items()
            )
        ),
    )


class TestBinaryRoundTrip:
    def test_property_binary_matches_jsonl_roundtrip(self, tmp_path):
        rng = random.Random(0xDA397)
        events = [_random_event(rng) for _ in range(300)]
        header = {"program": "prop", "nprocs": 8}

        jl = tmp_path / "events.jsonl"
        write_events_jsonl(events, jl, header=dict(header))
        jl_header, via_jsonl = read_events_jsonl(jl)

        bheader, via_binary = decode_events(
            encode_events(events, header=dict(header))
        )
        assert bheader["program"] == jl_header["program"] == "prop"
        # the two codecs canonicalize identically (tuples -> lists,
        # floats exact: JSON repr round-trips doubles, binary ships raw)
        assert via_binary == via_jsonl
        assert event_signature(via_binary) == event_signature(via_jsonl)
        assert [e.ts for e in via_binary] == [e.ts for e in via_jsonl]
        assert [e.dur for e in via_binary] == [e.dur for e in via_jsonl]

    def test_file_roundtrip_and_size(self, tmp_path):
        rng = random.Random(7)
        events = [_random_event(rng) for _ in range(200)]
        revt = tmp_path / "s.revt"
        jsonl = tmp_path / "s.jsonl"
        write_events_binary(events, revt, header={"n": 1})
        write_events_jsonl(events, jsonl, header={"n": 1})
        header, back = read_events_binary(revt)
        assert header["n"] == 1 and len(back) == len(events)
        # "compact" is the point: the interned-string struct framing
        # must beat the JSONL text form comfortably
        assert revt.stat().st_size < jsonl.stat().st_size / 2

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.revt"
        write_events_binary([], path)
        header, events = read_events_binary(path)
        assert events == []

    def test_corrupt_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_events(b"NOTREVT\n\x00\x00")

    def test_campaign_stream_roundtrips(self, tmp_path):
        # both codecs decode sequence values as lists, so the two decoded
        # streams must agree exactly (the in-memory stream holds tuples)
        report = _verify(wildcard_lattice, 3, LATTICE_KW, trace_events=True)
        revt, jsonl = tmp_path / "campaign.revt", tmp_path / "campaign.jsonl"
        write_events_binary(report.events, revt, header={"nprocs": 3})
        write_events_jsonl(report.events, jsonl, header={"nprocs": 3})
        _, via_binary = read_events_binary(revt)
        _, via_jsonl = read_events_jsonl(jsonl)
        assert len(via_binary) == len(report.events)
        assert event_signature(via_binary) == event_signature(via_jsonl)


# --------------------------------------------------------------------- #
# ring overflow and exact counts                                         #
# --------------------------------------------------------------------- #


class TestRingAccounting:
    def test_overflow_drops_payloads_never_counts(self):
        t = Tracer(buffer=4, clock=lambda: 0.0)
        for i in range(7):
            t.instant(f"e{i}", "test")
        assert t.dropped == 3
        counts = t.counts()
        assert sum(counts.values()) == 7  # every emit counted exactly
        assert counts == {f"e{i}": 1 for i in range(7)}
        events = t.drain()
        assert [e.name for e in events] == ["e3", "e4", "e5", "e6"]

    def test_capture_off_counts_without_payloads(self):
        t = Tracer(buffer=8, clock=lambda: 0.0)
        t.capture = False
        for _ in range(5):
            t.instant("quiet", "test")
        payload = t.collect()
        assert payload["records"] == []
        assert payload["counts"] == {"quiet": 5}
        assert payload["captured"] is False
        assert payload["dropped"] == 0

    def test_collect_is_exact_under_overflow(self):
        t = Tracer(buffer=2, clock=lambda: 0.0)
        for _ in range(5):
            t.instant("hot", "test")
        payload = t.collect()
        assert len(payload["records"]) == 2
        assert payload["counts"] == {"hot": 5}
        assert payload["dropped"] == 3

    def test_campaign_dropped_accounting(self):
        report = _verify(
            wildcard_lattice, 3, LATTICE_KW,
            trace_events=True, trace_buffer=4,
        )
        ev = report.telemetry["events"]
        assert ev["dropped"] > 0
        # exact counters are immune to the tiny ring
        full = _verify(wildcard_lattice, 3, LATTICE_KW, trace_events=True)
        assert _event_counters(report) == _event_counters(full)


# --------------------------------------------------------------------- #
# checkpoints compose with tracing                                       #
# --------------------------------------------------------------------- #


class TestCheckpointTracing:
    def test_restored_runs_emit_identical_streams(self):
        on = _verify(matmult_program, 4, MATMULT_KW, trace_events=True)
        assert on.parallel_stats["checkpoint"]["hits"] > 0
        off = _verify(
            matmult_program, 4, MATMULT_KW,
            trace_events=True, prefix_checkpoints=False,
        )
        assert _sig(on.events) == _sig(off.events)
        assert _event_counters(on) == _event_counters(off)
        assert _canon(on) == _canon(off)

    def test_tracing_no_longer_demotes_checkpoints(self):
        report = _verify(matmult_program, 4, MATMULT_KW, trace_events=True)
        ckpt = report.parallel_stats["checkpoint"]
        assert ckpt["enabled"]
        assert not ckpt.get("demoted")

    def test_sampling_composes_with_checkpoints(self):
        on = _verify(
            matmult_program, 4, MATMULT_KW,
            trace_events=True, trace_sample_every=2,
        )
        off = _verify(
            matmult_program, 4, MATMULT_KW,
            trace_events=True, trace_sample_every=2,
            prefix_checkpoints=False,
        )
        assert _sig(on.events) == _sig(off.events)
        assert _event_counters(on) == _event_counters(off)


class TestZooTraceBitIdentity:
    """Tracing on vs off must be invisible in the report, zoo-wide."""

    @pytest.mark.parametrize("entry", ZOO, ids=[e.name for e in ZOO])
    def test_bugzoo_reports_identical(self, entry):
        on = _verify(
            entry.program, entry.nprocs,
            max_interleavings=40, trace_events=True,
        )
        off = _verify(entry.program, entry.nprocs, max_interleavings=40)
        assert _canon(on) == _canon(off)


# --------------------------------------------------------------------- #
# phase timings                                                          #
# --------------------------------------------------------------------- #


class TestPhaseTimings:
    def test_wall_phase_counters_recorded(self):
        report = _verify(matmult_program, 4, MATMULT_KW)
        counters = report.telemetry["metrics"]["counters"]
        phases = {
            k: v for k, v in counters.items() if k.startswith("wall.phase.")
        }
        assert "wall.phase.execute" in phases
        assert all(v >= 0 for v in phases.values())
        # checkpoint restores surface as their own phase
        assert "wall.phase.restore" in phases

    def test_phase_counters_are_nondeterministic_namespace(self):
        report = _verify(wildcard_lattice, 3, LATTICE_KW)
        det = deterministic_view(report.telemetry["metrics"])
        assert not any(
            k.startswith("wall.") for k in det["counters"]
        )


# --------------------------------------------------------------------- #
# stats on journal directories                                           #
# --------------------------------------------------------------------- #


class TestJournalStats:
    def test_campaign_journal_summary(self, tmp_path):
        jdir = tmp_path / "journal"
        DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=dict(LATTICE_KW)
        ).verify(journal=jdir)
        progress = journal_progress(jdir)
        assert progress["mode"] == "campaign"
        assert progress["complete"]
        assert progress["runs"] > 0
        text = render_journal_summary(progress)
        assert "runs journaled" in text
        assert "complete" in journal_follow_line(progress)

    def test_shard_journal_points_to_coordinator(self, tmp_path):
        from repro.dampi.journal import CampaignJournal

        jdir = tmp_path / "lease-1"
        j = CampaignJournal(jdir)
        j.ensure_meta(2, DampiConfig(), mode="shard", shard_prefix={"alt": 1})
        j.append({"t": "srun", "k": "x", "entry": {}})
        j.close()
        progress = journal_progress(jdir)
        assert progress["mode"] == "shard"
        assert progress["runs"] == 1
        assert "coordinator" in render_journal_summary(progress)

    def test_non_journal_dir_pointed_error(self, tmp_path):
        with pytest.raises(JournalStatsError, match="no journal segments"):
            journal_progress(tmp_path)

    def test_cli_stats_on_journal_dir(self, tmp_path, capsys):
        from repro.cli import main

        jdir = tmp_path / "journal"
        DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=dict(LATTICE_KW)
        ).verify(journal=jdir)
        assert main(["stats", str(jdir)]) == 0
        assert "runs journaled" in capsys.readouterr().out

    def test_cli_follow_rejects_plain_file(self, tmp_path):
        from repro.cli import main

        f = tmp_path / "x.json"
        f.write_text("{}")
        with pytest.raises(SystemExit, match="--follow"):
            main(["stats", str(f), "--follow"])


class TestFollowInterval:
    """``--follow --interval`` hygiene: interval 0 used to busy-spin the
    journal reader at 100% CPU; negatives were silently treated as the
    old 0.1s floor."""

    def test_zero_clamps_to_floor(self):
        from repro.obs.stats import MIN_FOLLOW_INTERVAL, follow_interval

        assert follow_interval(0) == MIN_FOLLOW_INTERVAL
        assert follow_interval(0.01) == MIN_FOLLOW_INTERVAL
        assert follow_interval(2.0) == 2.0

    def test_negative_rejected_with_pointed_error(self):
        from repro.obs.stats import follow_interval

        with pytest.raises(ValueError, match="--interval must be >= 0"):
            follow_interval(-1)

    def test_cli_rejects_negative_interval(self, tmp_path):
        from repro.cli import main

        jdir = tmp_path / "journal"
        DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=dict(LATTICE_KW)
        ).verify(journal=jdir)
        with pytest.raises(SystemExit, match="--interval must be >= 0"):
            main(["stats", str(jdir), "--follow", "--interval", "-1"])

    def test_cli_interval_zero_completes(self, tmp_path, capsys):
        from repro.cli import main

        # a complete journal: the follow loop prints one line and exits,
        # so interval 0 exercises only the clamp (no sleep happens)
        jdir = tmp_path / "journal"
        DampiVerifier(
            wildcard_lattice, 3, DampiConfig(), kwargs=dict(LATTICE_KW)
        ).verify(journal=jdir)
        assert main(["stats", str(jdir), "--follow", "--interval", "0"]) == 0
        assert "complete" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# CLI tracing defaults and .revt export                                  #
# --------------------------------------------------------------------- #


class TestCliTracing:
    ARGS = [
        "verify", "repro.workloads.patterns:fig3_program", "--nprocs", "3",
    ]

    def test_tracing_on_by_default(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.json"
        main(self.ARGS + ["--json-out", str(out)])
        payload = json.loads(out.read_text())
        assert payload["telemetry"]["events"]["enabled"] is True
        assert payload["telemetry"]["events"]["captured"] > 0

    def test_no_trace_disables(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.json"
        main(self.ARGS + ["--no-trace", "--json-out", str(out)])
        payload = json.loads(out.read_text())
        assert payload["telemetry"]["events"]["enabled"] is False

    def test_no_trace_conflicts_with_exports(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--no-trace"):
            main(self.ARGS + ["--no-trace", "--revt-out", str(tmp_path / "x")])

    def test_no_trace_conflicts_with_trace_sample(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--trace-sample"):
            main(self.ARGS + ["--no-trace", "--trace-sample", "4"])

    def test_revt_export_and_stats(self, tmp_path, capsys):
        from repro.cli import main

        revt = tmp_path / "c.revt"
        main(self.ARGS + ["--revt-out", str(revt)])
        _, events = read_events_binary(revt)
        assert events
        assert main(["stats", str(revt)]) == 0
        assert "by category" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# progress degradation                                                   #
# --------------------------------------------------------------------- #


class _Sink:
    def __init__(self, tty: bool):
        self.tty = tty
        self.chunks: list = []

    def write(self, s):
        self.chunks.append(s)

    def isatty(self):
        return self.tty


class TestProgressStreams:
    def test_non_tty_plain_lines_no_ansi(self):
        sink = _Sink(tty=False)
        p = ProgressReporter(0.0, stream=sink)
        p.tick(1, 2, 3, force=True)
        p.final(1, 0, wall_seconds=5.0)
        assert all(c.endswith("\n") for c in sink.chunks)
        assert not any("\x1b" in c or "\r" in c for c in sink.chunks)

    def test_tty_rewrites_one_line_and_terminates(self):
        sink = _Sink(tty=True)
        p = ProgressReporter(0.0, stream=sink)
        p.tick(1, 2, 3, force=True)
        p.tick(2, 1, 3, force=True)
        assert all(c.startswith("\r\x1b[2K") for c in sink.chunks)
        assert not any(c.endswith("\n") for c in sink.chunks)
        p.final(2, 0, wall_seconds=5.0)
        assert sink.chunks[-1] == "\n"  # the line is closed at the end

    def test_close_is_idempotent(self):
        sink = _Sink(tty=True)
        p = ProgressReporter(0.0, stream=sink)
        p.tick(1, 1, 1, force=True)
        p.close()
        p.close()
        assert sink.chunks.count("\n") == 1


# --------------------------------------------------------------------- #
# dist worker events on the wire                                         #
# --------------------------------------------------------------------- #


class TestDistEventPayloads:
    def test_pack_unpack_roundtrip(self):
        from repro.dist.protocol import pack_events, unpack_events

        t = Tracer(buffer=16, clock=lambda: 0.0)
        t.instant("memo_hit", "dist", run=3, lease="L1")
        t.complete("lease", "dist", 0.0, lease="L1", runs=4)
        events = t.drain()
        blob = pack_events(events, header={"worker": 9})
        assert isinstance(blob, str)  # JSON-frame safe
        header, back = unpack_events(blob)
        assert header["worker"] == 9
        assert event_signature(back) == event_signature(events)

    def test_dist_campaign_collects_worker_events(self):
        from repro.dist import distributed_verify

        report = distributed_verify(
            matmult_program, 3, config=DampiConfig(), workers=2
        )
        counters = report.telemetry["metrics"]["counters"]
        assert counters.get("dist.worker_events", 0) > 0
        dist_events = [e for e in report.events if e.cat == "dist"]
        assert any(e.name == "lease" for e in dist_events)
        assert report.telemetry["events"]["worker_captured"] == len(
            dist_events
        )
