"""Differential testing: DAMPI vs an independent feasibility oracle.

The oracle (tests/oracle.py) enumerates feasible wildcard outcomes by
exhaustive state-space search over an abstract MPI semantics — a
mechanism sharing no code or theory with DAMPI's clocks-and-replay.  On
randomly generated programs:

* **soundness** (both clock modes): every outcome DAMPI explores is
  oracle-feasible;
* **completeness** (vector clocks, the paper's precise mode): DAMPI
  explores *exactly* the oracle's outcome set;
* Lamport mode may under-approximate (paper §II-F) but never over.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier

from tests.oracle import (
    as_runnable,
    dampi_outcomes,
    feasible_outcomes,
    recv,
    send,
    wild,
)


def verify(programs, clock_impl):
    cfg = DampiConfig(
        clock_impl=clock_impl, enable_monitor=False, enable_leak_check=False
    )
    return DampiVerifier(as_runnable(programs), len(programs), cfg).verify()


class TestOracleItself:
    """Sanity-check the oracle on hand-computable programs first."""

    def test_single_wildcard_two_senders(self):
        programs = [[wild()], [send(0)], [send(0)]]
        outcomes, dead = feasible_outcomes(programs)
        assert outcomes == {
            frozenset({((0, 0), 1)}),
            frozenset({((0, 0), 2)}),
        }
        assert not dead

    def test_non_overtaking_within_stream(self):
        # rank 1 sends twice on one stream; the wildcard can only get the
        # FIRST message (the second is blocked behind it for the det recv)
        programs = [[wild(), recv(1)], [send(0), send(0)]]
        outcomes, dead = feasible_outcomes(programs)
        assert outcomes == {frozenset({((0, 0), 1)})}
        assert not dead

    def test_cross_coupled_fig4(self):
        # the paper's Fig. 4 shape: 3 feasible outcomes, 2 of them deadlock
        programs = [
            [send(2)],
            [send(3)],
            [wild(), send(3), recv(3)],
            [wild(), send(2), recv(2)],
        ]
        outcomes, dead = feasible_outcomes(programs)
        assert len(outcomes) == 1  # only the non-cross matching completes
        assert dead  # the cross matchings starve the trailing receives

    def test_starvation_deadlock(self):
        programs = [[wild(), wild()], [send(0)]]
        outcomes, dead = feasible_outcomes(programs)
        assert outcomes == set()
        assert dead


class TestHandPickedDifferential:
    CASES = [
        # classic funnel
        [[wild(), wild()], [send(0)], [send(0), send(0)]],
        # two receivers, disjoint senders
        [[wild()], [wild()], [send(0)], [send(1)]],
        # mixed det + wild on one stream
        [[recv(1), wild()], [send(0), send(0)], [send(0)]],
        # chained: rank1 sends only after receiving
        [[wild(), wild()], [recv(2), send(0)], [send(1), send(0)]],
        # tags separate streams
        [[wild(1), wild(2)], [send(0, 1), send(0, 2)], [send(0, 2)]],
    ]

    @pytest.mark.parametrize("idx", range(len(CASES)))
    def test_vector_matches_oracle_exactly(self, idx):
        programs = self.CASES[idx]
        expected, dead = feasible_outcomes(programs)
        rep = verify(programs, "vector")
        got = dampi_outcomes(rep)
        assert got == expected, (
            f"case {idx}: DAMPI {sorted(map(sorted, got))} != "
            f"oracle {sorted(map(sorted, expected))}"
        )
        if not dead:
            assert not rep.deadlocks

    @pytest.mark.parametrize("idx", range(len(CASES)))
    def test_lamport_sound_subset(self, idx):
        programs = self.CASES[idx]
        expected, _ = feasible_outcomes(programs)
        got = dampi_outcomes(verify(programs, "lamport"))
        assert got <= expected


def random_program(rng: random.Random, nprocs: int):
    """A random deadlock-free-ish program: receivers post at most as many
    receives as messages addressed to them; wildcard-heavy."""
    programs = [[] for _ in range(nprocs)]
    addressed = [0] * nprocs
    # senders: ranks 1.. send 1-2 messages to rank 0 (and sometimes rank 1)
    for r in range(1, nprocs):
        for _ in range(rng.randint(1, 2)):
            dest = 0 if nprocs < 3 or rng.random() < 0.7 else 1
            if dest == r:
                dest = 0
            tag = rng.choice([0, 0, 1])
            programs[r].append(send(dest, tag))
            addressed[dest] += 1
    # receivers consume a prefix of what's addressed to them
    for dest in (0, 1):
        if dest >= nprocs:
            continue
        tags_in = [op[2] for r in range(nprocs) for op in programs[r] if op[0] == "send" and op[1] == dest]
        rng.shuffle(tags_in)
        n_recv = rng.randint(0, len(tags_in))
        for tag in tags_in[:n_recv]:
            if rng.random() < 0.7:
                programs[dest].append(wild(tag))
            else:
                # deterministic receive from some rank that sent this tag here
                senders = [
                    r
                    for r in range(nprocs)
                    if any(op == ("send", dest, tag) for op in programs[r])
                ]
                programs[dest].append(recv(rng.choice(senders), tag))
    return programs


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_random_programs_vector_exact(seed):
    rng = random.Random(seed)
    nprocs = rng.randint(2, 4)
    programs = random_program(rng, nprocs)
    expected, dead = feasible_outcomes(programs)
    rep = verify(programs, "vector")
    got = dampi_outcomes(rep)
    # completeness + soundness on completed executions
    assert got == expected, (
        f"seed {seed}: programs={programs}\n"
        f"DAMPI={sorted(map(sorted, got))}\noracle={sorted(map(sorted, expected))}"
    )
    # deadlock agreement: if the oracle proves no branch can deadlock,
    # DAMPI must not report one
    if not dead:
        assert not rep.deadlocks


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_random_programs_lamport_sound(seed):
    rng = random.Random(seed)
    nprocs = rng.randint(2, 4)
    programs = random_program(rng, nprocs)
    expected, _ = feasible_outcomes(programs)
    got = dampi_outcomes(verify(programs, "lamport"))
    assert got <= expected, f"seed {seed}: unsound outcomes {got - expected}"
