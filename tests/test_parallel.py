"""The parallel replay engine: frontier batches, the worker pool, and the
serial-vs-parallel determinism guarantee.

The headline property: for any program and any ``jobs`` setting the
verification report is *bit-identical* to the serial walk — the pool only
pre-computes schedules the serial DFS is going to request anyway.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import replace

import pytest

from repro.dampi.config import DampiConfig
from repro.dampi.campaign import run_campaign
from repro.dampi.explorer import ScheduleGenerator
from repro.dampi.parallel import (
    ReplaySpec,
    schedule_key,
    simulate_wave_schedule,
)
from repro.dampi.verifier import DampiVerifier
from repro.errors import AbortError, DeadlockError
from repro.mpi.constants import ANY_SOURCE
from repro.workloads.bugzoo import ZOO
from repro.workloads.patterns import wildcard_lattice

from tests.test_explorer import trace_with

#: workers fork from the test process; programs can tell where they run
_MAIN_PID = os.getpid()


def _report_fingerprint(report):
    """Everything the determinism property compares between jobs settings."""
    return {
        "interleavings": report.interleavings,
        "outcomes": report.outcomes,
        "errors": {(e.kind, e.detail) for e in report.errors},
        "error_indices": sorted((e.kind, e.run_index) for e in report.errors),
        "flips": [r.flip for r in report.runs],
        "run_outcomes": [r.outcome for r in report.runs],
        "run_errors": [r.error_kinds for r in report.runs],
        "divergences": report.divergences,
        "truncated": report.truncated,
    }


class TestSerialParallelDeterminism:
    """Satellite: jobs=1 and jobs=4 must produce identical reports."""

    @pytest.mark.parametrize("entry", ZOO, ids=[e.name for e in ZOO])
    def test_bugzoo_reports_identical(self, entry):
        cfg = DampiConfig(max_interleavings=40)
        serial = DampiVerifier(entry.program, entry.nprocs, cfg).verify()
        parallel = DampiVerifier(
            entry.program, entry.nprocs, replace(cfg, jobs=4)
        ).verify()
        assert _report_fingerprint(serial) == _report_fingerprint(parallel)

    @pytest.mark.parametrize("bound_k", [0, 1, None])
    def test_lattice_identical_across_bounds(self, bound_k):
        # force_jobs: actually exercise worker processes even on a
        # single-CPU host (where jobs>1 would auto-demote to inline)
        cfg = DampiConfig(bound_k=bound_k)
        kwargs = {"receives": 3, "senders": 3}
        serial = DampiVerifier(wildcard_lattice, 4, cfg, kwargs=kwargs).verify()
        parallel = DampiVerifier(
            wildcard_lattice, 4, replace(cfg, jobs=4, force_jobs=True), kwargs=kwargs
        ).verify()
        assert _report_fingerprint(serial) == _report_fingerprint(parallel)
        assert parallel.parallel_stats["mode"] == "pool"
        assert not parallel.parallel_stats["demoted"]

    def test_budget_truncation_identical(self):
        cfg = DampiConfig(max_interleavings=7)
        kwargs = {"receives": 3, "senders": 3}
        serial = DampiVerifier(wildcard_lattice, 4, cfg, kwargs=kwargs).verify()
        parallel = DampiVerifier(
            wildcard_lattice, 4, replace(cfg, jobs=3), kwargs=kwargs
        ).verify()
        assert serial.truncated and parallel.truncated
        assert _report_fingerprint(serial) == _report_fingerprint(parallel)


class TestFrontierBatch:
    """next_decision_batch(): pending schedules without state mutation."""

    def _seeded(self, bound_k=None):
        g = ScheduleGenerator(bound_k=bound_k)
        g.seed(
            trace_with(
                [(0, 0, 1), (0, 1, 1), (1, 2, 0)],
                [(0, 0, 2), (0, 0, 3), (0, 1, 2), (1, 2, 3)],
            )
        )
        return g

    def test_first_element_is_next_decisions(self):
        g = self._seeded()
        batch = g.next_decision_batch(8)
        d = g.next_decisions()
        assert schedule_key(batch[0]) == schedule_key(d)

    def test_batch_is_pure(self):
        g = self._seeded()
        a = [schedule_key(d) for d in g.next_decision_batch(8)]
        b = [schedule_key(d) for d in g.next_decision_batch(8)]
        assert a == b

    def test_unbounded_batch_stays_on_deepest_node(self):
        g = self._seeded(bound_k=None)
        batch = g.next_decision_batch(8)
        # deepest node (1,2) has exactly one alternative; with mixing
        # allowed the wave must not speculate across nodes
        assert [d.flip for d in batch] == [(1, 2)]

    def test_k0_batch_roams_all_open_nodes(self):
        g = self._seeded(bound_k=0)
        batch = g.next_decision_batch(8)
        # k=0: every open node's flips form one wave (4 alternatives total)
        assert [d.flip for d in batch] == [(1, 2), (0, 1), (0, 0), (0, 0)]

    def test_width_caps_the_wave(self):
        g = self._seeded(bound_k=0)
        assert len(g.next_decision_batch(2)) == 2

    def test_empty_iff_exhausted(self):
        g = ScheduleGenerator()
        g.seed(trace_with([(0, 0, 1)], []))
        assert g.next_decision_batch(4) == []
        assert g.next_decisions() is None

    def test_sibling_schedules_match_later_serial_requests(self):
        # the guarantee the executor's cache is built on: every schedule in
        # the wave is eventually requested verbatim by the serial walk
        g = self._seeded(bound_k=0)
        speculated = {schedule_key(d) for d in g.next_decision_batch(16)}
        requested = set()
        while True:
            d = g.next_decisions()
            if d is None:
                break
            requested.add(schedule_key(d))
            epochs = [
                (r, lc, d.forced.get((r, lc), 1))
                for (r, lc) in [(0, 0), (0, 1), (1, 2)]
            ]
            g.integrate(trace_with(epochs, []))
        assert speculated <= requested


class TestOutcomeDedup:
    def test_integrate_without_seeding_keeps_prefix_only(self):
        g = ScheduleGenerator()
        g.seed(trace_with([(0, 0, 1)], [(0, 0, 2)]))
        g.next_decisions()
        g.integrate(
            trace_with([(0, 0, 2), (1, 1, 0)], [(0, 0, 3), (1, 1, 2)]),
            seed_fresh=False,
        )
        # no fresh node for (1,1); the prefix alternative 3 is still merged
        assert [n.key for n in g.path] == [(0, 0)]
        assert 3 in g.path[0].alternatives

    def test_dedup_never_loses_distinct_outcomes_on_lattice(self):
        kwargs = {"receives": 2, "senders": 3}
        base = DampiVerifier(wildcard_lattice, 4, DampiConfig(), kwargs=kwargs).verify()
        dedup = DampiVerifier(
            wildcard_lattice, 4, DampiConfig(outcome_dedup=True), kwargs=kwargs
        ).verify()
        assert dedup.outcomes == base.outcomes
        assert dedup.interleavings <= base.interleavings


def _lattice_body(p):
    if p.rank == 0:
        got = []
        for _ in range(p.size - 1):
            got.append(p.world.recv(source=ANY_SOURCE))
        return tuple(sorted(got))
    p.world.send(bytes([p.rank]), dest=0)
    return None


def crash_in_worker_program(p):
    """Dies instantly — but only inside a pool worker process."""
    if os.getpid() != _MAIN_PID:
        os._exit(17)
    return _lattice_body(p)


def sleep_in_worker_program(p):
    """Takes ~1s per rank 0 — but only inside a pool worker process."""
    if os.getpid() != _MAIN_PID and p.rank == 0:
        time.sleep(1.0)
    return _lattice_body(p)


class TestWorkerPoolDegradation:
    def test_unpicklable_program_falls_back_inline(self):
        captured = []  # a closure is unpicklable

        def program(p):
            captured.append(p.rank)
            return _lattice_body(p)

        report = DampiVerifier(program, 4, DampiConfig(jobs=4)).verify()
        assert report.parallel_stats["mode"] == "inline"
        serial = DampiVerifier(program, 4, DampiConfig(jobs=1)).verify()
        assert _report_fingerprint(report) == _report_fingerprint(serial)

    def test_single_cpu_hosts_auto_demote_with_reason(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        report = DampiVerifier(
            wildcard_lattice, 4, DampiConfig(jobs=4), kwargs={"receives": 2, "senders": 2}
        ).verify()
        stats = report.parallel_stats
        assert stats["demoted"] and "single-CPU host" in stats["demote_reason"]
        assert stats["submitted"] == 0  # the pool never even started
        serial = DampiVerifier(
            wildcard_lattice, 4, DampiConfig(jobs=1), kwargs={"receives": 2, "senders": 2}
        ).verify()
        assert _report_fingerprint(report) == _report_fingerprint(serial)

    def test_force_jobs_overrides_single_cpu_demotion(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        report = DampiVerifier(
            wildcard_lattice,
            4,
            DampiConfig(jobs=2, force_jobs=True),
            kwargs={"receives": 2, "senders": 2},
        ).verify()
        stats = report.parallel_stats
        assert not stats["demoted"] and stats["demote_reason"] is None
        assert stats["submitted"] > 0

    def test_dead_worker_reported_as_crash_and_session_survives(self):
        report = DampiVerifier(
            crash_in_worker_program, 4, DampiConfig(jobs=2, force_jobs=True)
        ).verify()
        stats = report.parallel_stats
        assert stats["demoted"] and stats["failures"] >= 1
        kinds = {e.kind for e in report.errors}
        assert "crash" in kinds
        lost = [e for e in report.errors if "worker died" in e.detail]
        assert lost and lost[0].decisions is not None  # witness survives
        # after demotion the rest of the space was walked in-process
        serial = DampiVerifier(
            crash_in_worker_program, 4, DampiConfig(jobs=1)
        ).verify()
        assert report.interleavings == serial.interleavings

    def test_timed_out_worker_reported_as_crash(self):
        report = DampiVerifier(
            sleep_in_worker_program,
            4,
            DampiConfig(
                jobs=2,
                force_jobs=True,
                job_timeout_seconds=0.15,
                max_interleavings=3,
            ),
        ).verify()
        timeouts = [e for e in report.errors if "exceeded" in e.detail]
        assert timeouts and all(e.kind == "crash" for e in timeouts)
        assert all(e.decisions is not None for e in timeouts)
        # each wedged worker was abandoned by recycling the pool — the
        # session stays in pool mode rather than demoting to inline
        stats = report.parallel_stats
        assert stats["abandoned_workers"] == len(timeouts)
        assert not stats["demoted"]


class TestParallelCampaign:
    def test_pooled_cells_match_serial_sweep(self):
        kwargs = {"receives": 2, "senders": 2}
        serial = run_campaign(wildcard_lattice, [3, 4], kwargs=kwargs, jobs=1)
        pooled = run_campaign(wildcard_lattice, [3, 4], kwargs=kwargs, jobs=2)
        assert [(c.nprocs, c.config_name) for c in pooled.cells] == [
            (c.nprocs, c.config_name) for c in serial.cells
        ]
        for a, b in zip(serial.cells, pooled.cells):
            assert _report_fingerprint(a.report) == _report_fingerprint(b.report)

    def test_unpicklable_campaign_falls_back_serial(self):
        box = []

        def program(p):
            box.append(0)
            return _lattice_body(p)

        result = run_campaign(program, [3], jobs=2)
        assert len(result.cells) == 2 and result.ok


class TestPicklingSupport:
    def test_deadlock_error_roundtrip(self):
        e = DeadlockError({0: "recv(src=1)", 1: "recv(src=0)"})
        e2 = pickle.loads(pickle.dumps(e))
        assert e2.blocked == e.blocked and str(e2) == str(e)

    def test_abort_error_roundtrip(self):
        e = AbortError(3, errorcode=9)
        e2 = pickle.loads(pickle.dumps(e))
        assert (e2.rank, e2.errorcode) == (3, 9) and str(e2) == str(e)

    def test_replay_spec_picklable_probe(self):
        good = ReplaySpec(DampiVerifier, wildcard_lattice, 3, DampiConfig())
        assert good.picklable()
        bad = ReplaySpec(DampiVerifier, lambda p: None, 3, DampiConfig())
        assert not bad.picklable()


class TestWaveSimulation:
    def test_serial_is_sum_and_wide_waves_scale(self):
        keys = [("k", i) for i in range(8)]
        durs = [1.0] * 8
        waves = [[keys[j] for j in range(i, min(i + 8, 8))] for i in range(8)]
        t1 = simulate_wave_schedule(keys, durs, waves, jobs=1)
        t4 = simulate_wave_schedule(keys, durs, waves, jobs=4)
        assert t1 == pytest.approx(8.0)
        assert t4 == pytest.approx(2.0)

    def test_dependent_chain_does_not_scale(self):
        # each wave reveals only the next schedule: span == work
        keys = [("k", i) for i in range(4)]
        waves = [[k] for k in keys]
        t1 = simulate_wave_schedule(keys, [1.0] * 4, waves, jobs=1)
        t4 = simulate_wave_schedule(keys, [1.0] * 4, waves, jobs=4)
        assert t1 == t4 == pytest.approx(4.0)


class TestTelemetryDeterminism:
    """Satellite: telemetry must not break the jobs-independence contract.

    Deterministic metric namespaces (engine.*, pb.*, campaign.*, run.*)
    derive from consumed runs only, and consumed runs are bit-identical
    across jobs settings — so the totals must be too.  Environment-
    dependent numbers (exec.*, wall.*) are excluded by design.
    """

    def _verify(self, jobs):
        cfg = DampiConfig(
            trace_events=True, jobs=jobs, force_jobs=jobs > 1
        )
        return DampiVerifier(
            wildcard_lattice, 4, cfg, kwargs={"receives": 2, "senders": 3}
        ).verify()

    def test_jobs2_metrics_totals_match_serial(self):
        from repro.obs.metrics import deterministic_view

        serial = self._verify(1)
        pooled = self._verify(2)
        assert _report_fingerprint(serial) == _report_fingerprint(pooled)
        assert deterministic_view(
            serial.telemetry["metrics"]
        ) == deterministic_view(pooled.telemetry["metrics"])

    def test_jobs2_run_events_match_serial(self):
        from repro.obs.trace import event_signature

        def consumed_run_events(report):
            # sched-category events come from the pool itself and are
            # jobs-dependent by nature; everything else must match
            return event_signature(
                e for e in report.events if e.cat != "sched"
            )

        serial = self._verify(1)
        pooled = self._verify(2)
        assert consumed_run_events(serial) == consumed_run_events(pooled)

    def test_executor_shares_campaign_registry(self):
        report = self._verify(2)
        counters = report.telemetry["metrics"]["counters"]
        gauges = report.telemetry["metrics"]["gauges"]
        # pool accounting lands in exec.* counters, not duplicate gauges
        assert counters["exec.submitted"] > 0
        for key in ("submitted", "hits", "misses", "failures", "wasted"):
            assert f"exec.{key}" not in gauges
        assert gauges["exec.jobs"] == 2
