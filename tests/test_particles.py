"""Particle migration: conservation, reference equality, wildcard safety."""

import numpy as np
import pytest

from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier
from repro.workloads.particles import (
    gather_particles,
    initial_particles,
    particles_program,
    serial_reference,
)

from tests.conftest import run_ok


class TestSerial:
    def test_ids_unique(self):
        parts = initial_particles(30)
        assert len(set(parts[:, 0])) == 30

    def test_positions_stay_in_domain(self):
        out = serial_reference(30, 50)
        assert np.all((out[:, 1] >= 0) & (out[:, 1] < 1))


class TestDistributed:
    @pytest.mark.parametrize("nprocs", [2, 3, 5])
    def test_matches_serial_reference(self, nprocs):
        n, steps = 36, 8
        res = run_ok(lambda p: gather_particles(p, n=n, steps=steps), nprocs)
        expected = serial_reference(n, steps)
        assert np.allclose(res.returns[0], expected, atol=1e-12)

    def test_wildcard_variant_matches(self):
        n, steps = 30, 6
        res = run_ok(
            lambda p: gather_particles(p, n=n, steps=steps, wildcard=True), 3
        )
        assert np.allclose(res.returns[0], serial_reference(n, steps), atol=1e-12)

    def test_zero_length_batches_flow(self):
        """With many ranks and few particles most migration batches are
        empty — the protocol must still complete."""
        res = run_ok(lambda p: gather_particles(p, n=6, steps=4), 6)
        assert np.allclose(res.returns[0], serial_reference(6, 4), atol=1e-12)


class TestUnderVerification:
    def test_wildcard_arrival_order_immaterial(self):
        n, steps, nprocs = 18, 2, 3
        expected = serial_reference(n, steps)

        def checked(p):
            mine = particles_program(p, n=n, steps=steps, wildcard=True)
            pieces = p.world.gather(mine, root=0)
            if p.world.rank == 0:
                parts = np.vstack([b for b in pieces if len(b)])
                parts = parts[np.argsort(parts[:, 0])]
                if not np.allclose(parts, expected, atol=1e-12):
                    raise AssertionError("migration depends on arrival order")

        cfg = DampiConfig(enable_monitor=False, max_interleavings=200)
        rep = DampiVerifier(checked, nprocs, cfg).verify()
        assert rep.ok, rep.summary()
