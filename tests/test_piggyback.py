"""Piggyback transport: pairing, shadow comms, wildcard deferral."""

import pytest

from repro.clocks.lamport import LamportStamp
from repro.dampi.piggyback import InlinePacked, PiggybackModule
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.runtime import run_program
from repro.pnmpi.module import ToolModule

from tests.conftest import run_ok


class StampHarness(ToolModule):
    """Feeds deterministic per-rank stamps into a PiggybackModule and logs
    what arrives with each receive (for pairing assertions)."""

    name = "harness"

    def __init__(self, pb: PiggybackModule):
        self.pb = pb
        self.sent_counter = {}
        self.received = {}  # rank -> list of (payload, stamp.time)
        pb.register(self._provide, self._consume)

    def setup(self, runtime) -> None:
        self.sent_counter = {r: 0 for r in range(runtime.nprocs)}
        self.received = {r: [] for r in range(runtime.nprocs)}

    def _provide(self, proc):
        # stamp value = 1000*rank + per-rank send ordinal: unique and
        # decodable, so mispairing is detectable
        n = self.sent_counter[proc.world_rank]
        self.sent_counter[proc.world_rank] += 1
        return LamportStamp(1000 * proc.world_rank + n, proc.world_rank)

    def _consume(self, proc, req, stamp):
        self.received[proc.world_rank].append((req.data, stamp.time))


def run_with_pb(prog, nprocs, mechanism="separate", **kw):
    pb = PiggybackModule(mechanism)
    harness = StampHarness(pb)
    res = run_program(prog, nprocs, modules=[harness, pb], **kw)
    res.raise_any()
    return harness, res


@pytest.mark.parametrize("mechanism", ["separate", "inline"])
class TestPairing:
    def test_stream_pairing_in_order(self, mechanism):
        def prog(p):
            if p.rank == 0:
                for i in range(5):
                    p.world.send(f"m{i}", dest=1, tag=2)
            else:
                for i in range(5):
                    assert p.world.recv(source=0, tag=2) == f"m{i}"

        harness, _ = run_with_pb(prog, 2, mechanism)
        # the i-th message carries the i-th stamp of rank 0
        assert harness.received[1] == [(f"m{i}", i) for i in range(5)]

    def test_out_of_order_tags_still_pair(self, mechanism):
        """Receiver drains tag 2 before tag 1: same-tag shadow streams must
        keep each stamp with its own message."""

        def prog(p):
            if p.rank == 0:
                p.world.send("a", dest=1, tag=1)  # stamp 0
                p.world.send("b", dest=1, tag=2)  # stamp 1
            else:
                assert p.world.recv(source=0, tag=2) == "b"
                assert p.world.recv(source=0, tag=1) == "a"

        harness, _ = run_with_pb(prog, 2, mechanism)
        assert sorted(harness.received[1]) == [("a", 0), ("b", 1)]

    def test_wildcard_receive_gets_right_stamp(self, mechanism):
        def prog(p):
            if p.rank == 2:
                got = set()
                for _ in range(2):
                    got.add(p.world.recv(source=ANY_SOURCE, tag=ANY_TAG))
                assert got == {"x", "y"}
            elif p.rank == 0:
                p.world.send("x", dest=2, tag=5)
            else:
                p.world.send("y", dest=2, tag=6)

        harness, _ = run_with_pb(prog, 3, mechanism)
        by_payload = dict(harness.received[2])
        assert by_payload["x"] == 0  # rank 0's first stamp
        assert by_payload["y"] == 1000  # rank 1's first stamp

    def test_mixed_wildcard_and_deterministic(self, mechanism):
        def prog(p):
            if p.rank == 0:
                p.world.send("det", dest=1, tag=1)
                p.world.send("wild", dest=1, tag=2)
            else:
                r_det = p.world.irecv(source=0, tag=1)
                r_wild = p.world.irecv(source=ANY_SOURCE, tag=2)
                r_wild.wait()
                r_det.wait()
                assert r_det.data == "det" and r_wild.data == "wild"

        harness, _ = run_with_pb(prog, 2, mechanism)
        assert sorted(harness.received[1]) == [("det", 0), ("wild", 1)]


class TestSeparateMechanism:
    def test_shadow_traffic_is_on_tool_contexts(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("m", dest=1)
            else:
                p.world.recv(source=0)

        pb = PiggybackModule("separate")
        StampHarness(pb)
        harness = pb  # just need engine stats
        from repro.mpi.runtime import Runtime

        rt = Runtime(2, prog, modules=[harness])
        # hack: register a trivial provider since no harness module attached
        pb.register(lambda proc: LamportStamp(0), lambda proc, req, s: None)
        res = rt.run()
        res.raise_any()
        tool_ctxs = [c for c in rt.engine.contexts.values() if c.tool]
        assert len(tool_ctxs) == 1
        assert tool_ctxs[0].label == "pb.world"

    def test_pb_message_count_matches_user_messages(self):
        def prog(p):
            if p.rank == 0:
                for _ in range(7):
                    p.world.send("m", dest=1)
            else:
                for _ in range(7):
                    p.world.recv(source=0)

        pb = PiggybackModule("separate")
        harness = StampHarness(pb)
        run_program(prog, 2, modules=[harness, pb]).raise_any()
        assert pb.pb_messages == 7

    def test_deferred_counter_counts_wildcards(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("m", dest=1, tag=1)
                p.world.send("m", dest=1, tag=2)
            else:
                p.world.recv(source=ANY_SOURCE, tag=1)  # deferred (wild src)
                p.world.recv(source=0, tag=ANY_TAG)  # deferred (wild tag)

        pb = PiggybackModule("separate")
        harness = StampHarness(pb)
        res = run_program(prog, 2, modules=[harness, pb])
        res.raise_any()
        assert pb.deferred_pb_recvs == 2

    def test_shadow_created_for_dup_and_split(self):
        from repro.dampi.clock_module import DampiClockModule

        def prog(p):
            dup = p.world.dup()
            sub = p.world.split(color=p.rank % 2, key=p.rank)
            if p.rank == 0:
                dup.send("on-dup", dest=1)
            elif p.rank == 1:
                assert dup.recv(source=ANY_SOURCE) == "on-dup"
            sub.barrier()
            dup.free()
            sub.free()

        pb = PiggybackModule("separate")
        clock = DampiClockModule(pb)
        res = run_program(prog, 4, modules=[clock, pb])
        res.raise_any()
        labels = {c for c in pb._shadow_ctx}
        assert len(labels) >= 4  # world + dup + two split halves


class TestInlineMechanism:
    def test_user_never_sees_wrapper(self):
        def prog(p):
            if p.rank == 0:
                p.world.send({"deep": [1]}, dest=1)
            else:
                got = p.world.recv(source=ANY_SOURCE)
                assert got == {"deep": [1]}
                assert not isinstance(got, InlinePacked)

        run_with_pb(prog, 2, "inline")

    def test_probe_count_unwrapped(self):
        def prog(p):
            if p.rank == 0:
                p.world.send([1, 2, 3], dest=1)
            else:
                st = p.world.probe(source=0)
                assert st.get_count() == 3
                p.world.recv(source=0)

        run_with_pb(prog, 2, "inline")

    def test_no_shadow_traffic(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("m", dest=1)
            else:
                p.world.recv(source=0)

        pb = PiggybackModule("inline")
        harness = StampHarness(pb)
        from repro.mpi.runtime import Runtime

        rt = Runtime(2, prog, modules=[harness, pb])
        res = rt.run()
        res.raise_any()
        # the shadow ctx exists (created in setup) but carries no traffic
        assert rt.engine.stats.envelopes == 1
