"""PnMPI interposition stack: chaining, ordering, argument rewriting."""

import pytest

from repro.mpi.runtime import run_program
from repro.pnmpi import ENTRY_POINTS, ToolModule, ToolStack

from tests.conftest import run_ok


class Recorder(ToolModule):
    """Records the order in which its wrappers fire."""

    def __init__(self, name, log):
        self.name = name
        self.log = log

    def isend(self, proc, chain, comm, payload, dest, tag):
        self.log.append((self.name, "pre", payload))
        req = chain(comm, payload, dest, tag)
        self.log.append((self.name, "post", payload))
        return req


class Rewriter(ToolModule):
    """Rewrites payloads on the way down — like DAMPI rewrites sources."""

    name = "rewriter"

    def isend(self, proc, chain, comm, payload, dest, tag):
        return chain(comm, f"[{payload}]", dest, tag)


class TestStack:
    def test_outermost_module_sees_call_first(self):
        log = []
        mods = [Recorder("outer", log), Recorder("inner", log)]

        def prog(p):
            if p.rank == 0:
                p.world.send("m", dest=1)
            else:
                p.world.recv(source=0)

        run_ok(prog, 2, modules=mods)
        pre = [e for e in log if e[1] == "pre"]
        post = [e for e in log if e[1] == "post"]
        assert pre == [("outer", "pre", "m"), ("inner", "pre", "m")]
        assert post == [("inner", "post", "m"), ("outer", "post", "m")]

    def test_argument_rewriting_reaches_engine(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=1)
            else:
                assert p.world.recv(source=0) == "[x]"

        run_ok(prog, 2, modules=[Rewriter()])

    def test_unwrapped_points_skip_modules(self):
        log = []

        def prog(p):
            p.world.barrier()  # Recorder does not wrap barrier

        run_ok(prog, 2, modules=[Recorder("r", log)])
        assert log == []

    def test_pmpi_bypasses_stack(self):
        log = []

        class PmpiSender(ToolModule):
            name = "pmpisender"

            def barrier(self, proc, chain, comm):
                # issue an uninstrumented send: Recorder must not see it
                if proc.world_rank == 0:
                    req = proc.pmpi.isend(proc.world, "hidden", 1, 99)
                    proc.pmpi.wait(req)
                else:
                    req = proc.pmpi.irecv(proc.world, 0, 99)
                    proc.pmpi.wait(req)
                return chain(comm)

        def prog(p):
            p.world.barrier()

        run_ok(prog, 2, modules=[Recorder("spy", log), PmpiSender()])
        assert log == []

    def test_duplicate_module_names_rejected(self):
        with pytest.raises(ValueError):
            ToolStack([Rewriter(), Rewriter()])

    def test_overrides_detection(self):
        r = Rewriter()
        assert r.overrides("isend")
        assert not r.overrides("irecv")

    def test_all_entry_points_have_bottoms(self):
        from repro.mpi.engine import MessageEngine
        from repro.mpi.process import Proc

        proc = Proc(0, MessageEngine(1))
        for point in ENTRY_POINTS:
            assert point in proc._bottoms, point

    def test_pmpi_waitall_is_blocked(self):
        from repro.mpi.engine import MessageEngine
        from repro.mpi.process import Proc

        proc = Proc(0, MessageEngine(1))
        with pytest.raises(AttributeError):
            proc.pmpi.waitall

    def test_finish_artifacts_collected(self):
        class Artful(ToolModule):
            name = "artful"

            def finish(self, runtime):
                return {"ranks": runtime.nprocs}

        def prog(p):
            pass

        res = run_ok(prog, 3, modules=[Artful()])
        assert res.artifacts["artful"] == {"ranks": 3}
