"""The post-mortem queue scan: exploring around a deadlocked self run.

Found by differential testing against the oracle (hypothesis seed 5607):
when the self run deadlocks, the finalize drain never executes, so
without a post-mortem scan DAMPI records no alternatives and misses every
feasible completed execution.  The scan reads the unexpected queues after
the engine stops and feeds them through the normal late-message analysis.
"""

import pytest

from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier
from repro.mpi.constants import ANY_SOURCE

from tests.oracle import dampi_outcomes, feasible_outcomes, recv, send, wild, as_runnable


#: The program the oracle caught us on: the self run's wildcards eat both
#: of rank 1's messages, starving recv(1) into a deadlock — but six
#: completed executions are feasible.
PINNED = [
    [wild(0), wild(0), recv(1, 0), recv(3, 0), wild(0)],
    [send(0, 0), send(0, 0), wild(0)],
    [send(0, 0), send(1, 0)],
    [send(0, 0), send(0, 0)],
]


class TestPinnedRegression:
    def test_self_run_deadlocks(self):
        v = DampiVerifier(as_runnable(PINNED), 4, DampiConfig(enable_monitor=False))
        result, _ = v.run_once()
        assert result.deadlocked

    @pytest.mark.parametrize("clock_impl", ["vector", "lamport"])
    def test_exploration_escapes_the_deadlock(self, clock_impl):
        cfg = DampiConfig(clock_impl=clock_impl, enable_monitor=False)
        rep = DampiVerifier(as_runnable(PINNED), 4, cfg).verify()
        completed = dampi_outcomes(rep)
        assert completed, "post-mortem scan must reveal escape routes"
        if clock_impl == "vector":
            expected, _ = feasible_outcomes(PINNED)
            assert completed == expected  # all six completed executions

    def test_deadlock_reported_alongside(self):
        rep = DampiVerifier(
            as_runnable(PINNED), 4, DampiConfig(enable_monitor=False)
        ).verify()
        assert rep.deadlocks  # the deadlock itself is still a finding


class TestPostMortemMechanics:
    def test_crashed_run_also_scanned(self):
        """A crash (not just deadlock) leaves queues; alternatives must
        still be discovered so replays can probe other matches."""

        def prog(p):
            if p.rank == 0:
                x = p.world.recv(source=ANY_SOURCE)
                raise RuntimeError(f"crash after matching {x}")
            p.world.send(p.rank, dest=0)

        rep = DampiVerifier(prog, 3, DampiConfig(enable_monitor=False)).verify()
        # both matches explored; both crash (distinct messages)
        assert rep.interleavings == 2
        crashes = [e for e in rep.errors if e.kind == "crash"]
        assert len(crashes) == 2

    def test_inline_mechanism_post_mortem(self):
        cfg = DampiConfig(piggyback="inline", enable_monitor=False)
        rep = DampiVerifier(as_runnable(PINNED), 4, cfg).verify()
        assert dampi_outcomes(rep)

    def test_clean_runs_unaffected(self):
        """In a clean run the finalize drain consumed everything; the scan
        must not double-count (coverage stays exactly P^N)."""
        from repro.workloads.patterns import wildcard_lattice

        rep = DampiVerifier(
            wildcard_lattice, 4, kwargs={"receives": 3, "senders": 3}
        ).verify()
        assert rep.interleavings == 27
