"""Probe non-determinism under verification (paper's ISP-probe work [7]).

Wildcard probes are epochs too: DAMPI records which message a probe
observed and forces the alternative observation in replays (as a
blocking probe on the forced source, so the observation is enforceable).
"""

import pytest

from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.request import Status


def probe_then_dispatch(p):
    """Rank 0 probes with ANY_SOURCE and dispatches on who it saw first —
    control flow hanging off a *probe*, not a receive."""
    if p.rank == 0:
        p.world.barrier()  # both senders' messages are queued
        st = p.world.probe(source=ANY_SOURCE)
        first_seen = st.source
        # drain both messages deterministically afterwards
        p.world.recv(source=1)
        p.world.recv(source=2)
        if first_seen == 2:
            raise RuntimeError("probe saw rank 2 first: the untested branch")
    else:
        p.world.send(p.rank, dest=0)
        p.world.barrier()


class TestProbeCoverage:
    def test_probe_alternative_forced_and_bug_found(self):
        rep = DampiVerifier(probe_then_dispatch, 3).verify()
        assert rep.interleavings == 2
        crashes = [e for e in rep.errors if e.kind == "crash"]
        assert len(crashes) == 1
        assert "rank 2 first" in crashes[0].detail
        # the witness forces the probe epoch, not a receive
        wit = crashes[0].decisions
        assert wit is not None and list(wit.forced.values()) == [2]

    def test_probe_witness_replays(self):
        rep = DampiVerifier(probe_then_dispatch, 3).verify()
        wit = next(e.decisions for e in rep.errors if e.kind == "crash")
        v = DampiVerifier(probe_then_dispatch, 3)
        result, trace = v.run_once(wit)
        assert result.primary_errors
        (probe_epoch,) = [e for e in trace.all_epochs() if e.kind == "probe"]
        assert probe_epoch.forced and probe_epoch.matched_source == 2

    def test_iprobe_epochs_explored(self):
        def prog(p):
            if p.rank == 0:
                p.world.barrier()
                flag, st = p.world.iprobe(source=ANY_SOURCE)
                assert flag
                seen = st.source
                p.world.recv(source=1)
                p.world.recv(source=2)
                return seen
            p.world.send(p.rank, dest=0)
            p.world.barrier()

        rep = DampiVerifier(prog, 3, DampiConfig(keep_traces=True)).verify()
        assert rep.interleavings == 2
        observed = {
            e.matched_source
            for t in rep.traces
            for e in t.all_epochs()
            if e.kind == "probe"
        }
        assert observed == {1, 2}

    def test_probe_recv_consistency_under_forcing(self):
        """The probe-then-targeted-recv idiom must stay consistent when the
        probe is forced: the subsequent recv targets the forced source."""

        def prog(p):
            if p.rank == 0:
                p.world.barrier()
                st = p.world.probe(source=ANY_SOURCE)
                got = p.world.recv(source=st.source, tag=st.tag)
                other = p.world.recv(source=ANY_SOURCE)
                assert {got, other} == {1, 2}
            else:
                p.world.send(p.rank, dest=0)
                p.world.barrier()

        rep = DampiVerifier(prog, 3).verify()
        assert rep.ok, rep.summary()
        assert rep.interleavings >= 2
