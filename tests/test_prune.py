"""Prune before you replay: subtree pruning + adaptive clock escalation.

The two load-bearing contracts (see ALGORITHM.md §4):

- **findings bit-identity** — a pruned campaign reports exactly the
  errors an unpruned one does, zoo-wide, at any ``--jobs`` setting and
  any distributed worker count;
- **full accounting** — every pruned subtree is counted: executed
  interleavings plus ``replays_saved`` equals the unpruned walk's run
  count, and ``repro resume`` replays the pruning deterministically.

Adaptive escalation's contract is the opposite direction: on the
cross-coupled Fig. 4 pattern the Lamport approximation *misses* a match
that vector clocks admit; escalation must close that gap while staying
a no-op everywhere the scalar judgement was genuine causality.
"""

from __future__ import annotations

import json

import pytest

from repro.dampi import prune as prune_mod
from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier
from repro.workloads.bugzoo import ZOO
from repro.workloads.patterns import fig4_program

COMMUTATIVE = next(
    e for e in ZOO if e.name == "safe commutative wildcard"
)


def _verify(program, nprocs, journal=None, **cfg):
    v = DampiVerifier(program, nprocs, DampiConfig(**cfg))
    try:
        return v.verify(journal=journal)
    finally:
        v.close()


def _findings(report):
    return sorted((e.kind, e.detail) for e in report.errors)


# --------------------------------------------------------------------- #
# future-equivalence pruning                                             #
# --------------------------------------------------------------------- #


class TestPruningZooProperty:
    @pytest.mark.parametrize("entry", ZOO, ids=lambda e: e.name)
    def test_findings_identical_and_fully_accounted(self, entry):
        base = _verify(entry.program, entry.nprocs)
        pruned = _verify(entry.program, entry.nprocs, prune=True)
        assert _findings(pruned) == _findings(base)
        ps = pruned.prune_stats
        assert ps is not None and ps["enabled"]
        # every skipped replay is accounted for: executed + saved is
        # exactly the unpruned walk's run count
        assert ps["replays_saved"] + pruned.interleavings == base.interleavings

    def test_commutative_wildcard_actually_prunes(self):
        pruned = _verify(COMMUTATIVE.program, COMMUTATIVE.nprocs, prune=True)
        ps = pruned.prune_stats
        assert ps["subtrees_pruned"] > 0
        assert ps["replays_saved"] == 2  # 6-run walk collapses to 4
        assert pruned.interleavings == 4

    def test_off_by_default_and_no_stats_block(self):
        report = _verify(COMMUTATIVE.program, COMMUTATIVE.nprocs)
        assert report.prune_stats is None
        assert report.interleavings == 6

    def test_jobs_pool_bit_identical(self):
        serial = _verify(COMMUTATIVE.program, COMMUTATIVE.nprocs, prune=True)
        pooled = _verify(
            COMMUTATIVE.program, COMMUTATIVE.nprocs,
            prune=True, jobs=2, force_jobs=True,
        )
        assert _findings(pooled) == _findings(serial)
        assert pooled.interleavings == serial.interleavings
        assert pooled.prune_stats == serial.prune_stats

    def test_prune_metrics_and_summary_line(self):
        report = _verify(COMMUTATIVE.program, COMMUTATIVE.nprocs, prune=True)
        counters = report.telemetry["metrics"]["counters"]
        assert counters["prune.subtrees"] == report.prune_stats["subtrees_pruned"]
        assert counters["prune.replays_saved"] == 2
        assert "subtrees pruned" in report.summary()
        assert json.loads(report.to_json())["prune_stats"] == report.prune_stats


class TestPruningJournal:
    def test_resume_replays_pruning_deterministically(self, tmp_path):
        jdir = tmp_path / "journal"
        first = _verify(
            COMMUTATIVE.program, COMMUTATIVE.nprocs, prune=True, journal=jdir
        )
        resumed = _verify(
            COMMUTATIVE.program, COMMUTATIVE.nprocs, prune=True, journal=jdir
        )
        assert resumed.journal_stats["executed"] == 0  # pure replay
        assert resumed.interleavings == first.interleavings
        assert resumed.prune_stats == first.prune_stats
        assert _findings(resumed) == _findings(first)

    def test_prune_audit_records_journaled(self, tmp_path):
        from repro.dampi.journal import CampaignJournal

        jdir = tmp_path / "journal"
        report = _verify(
            COMMUTATIVE.program, COMMUTATIVE.nprocs, prune=True, journal=jdir
        )
        journal = CampaignJournal(jdir)
        audits = [e for e in journal.entries if e.get("t") == "prune"]
        assert len(audits) == report.prune_stats["subtrees_pruned"]
        assert (
            sum(a["saved"] for a in audits)
            == report.prune_stats["replays_saved"]
        )


class TestPruningDistributed:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_dist_bit_identical_to_serial(self, workers):
        from repro.dist import distributed_verify

        serial = _verify(COMMUTATIVE.program, COMMUTATIVE.nprocs, prune=True)
        dist = distributed_verify(
            COMMUTATIVE.program,
            COMMUTATIVE.nprocs,
            config=DampiConfig(prune=True),
            workers=workers,
        )
        assert _findings(dist) == _findings(serial)
        assert dist.interleavings == serial.interleavings
        assert dist.prune_stats == serial.prune_stats


# --------------------------------------------------------------------- #
# adaptive clock escalation                                              #
# --------------------------------------------------------------------- #


class TestAdaptiveEscalation:
    def test_fig4_lamport_misses_vector_finds(self):
        # the premise: the cross-coupled pattern really does split the
        # two clock systems apart
        lamport = _verify(fig4_program, 4)
        vector = _verify(fig4_program, 4, clock_impl="vector")
        assert not lamport.errors
        assert any(e.kind == "deadlock" for e in vector.errors)
        assert vector.interleavings > lamport.interleavings

    def test_fig4_adaptive_closes_the_gap(self):
        vector = _verify(fig4_program, 4, clock_impl="vector")
        adaptive = _verify(fig4_program, 4, adaptive_clocks=True)
        assert _findings(adaptive) == _findings(vector)
        assert adaptive.interleavings == vector.interleavings
        ps = adaptive.prune_stats
        assert ps["escalations"] > 0
        assert ps["extra_alternatives"] > 0
        assert "clock escalations" in adaptive.summary()

    def test_injected_matches_are_marked_synthetic(self):
        v = DampiVerifier(fig4_program, 4, DampiConfig(adaptive_clocks=True))
        try:
            _result, trace = v.run_once()
            assert trace.scalar_risk  # the flagging pass fired
            stats = {
                "escalations": 0,
                "escalation_replays": 0,
                "extra_alternatives": 0,
            }
            added = v._escalate(None, trace, stats)
            assert added and added > 0
            injected = [
                m
                for m in trace.potential_matches
                if m.env_uid == prune_mod.ESCALATED_ENV_UID
            ]
            assert len(injected) == added
        finally:
            v.close()

    @pytest.mark.parametrize("entry", ZOO, ids=lambda e: e.name)
    def test_zoo_findings_preserved_under_both_features(self, entry):
        base = _verify(entry.program, entry.nprocs)
        both = _verify(
            entry.program, entry.nprocs, prune=True, adaptive_clocks=True
        )
        # escalation may only *add* coverage; on the zoo (no cross-coupled
        # imprecision that hides an error) findings must be unchanged
        assert _findings(both) == _findings(base)

    def test_requires_scalar_clock(self):
        with pytest.raises(ValueError, match="adaptive"):
            DampiConfig(clock_impl="vector", adaptive_clocks=True)

    def test_precision_impl_mapping(self):
        from repro.clocks.dual import precision_impl

        assert precision_impl("lamport") == "vector"
        assert precision_impl("lamport_dual") == "vector_dual"
        assert precision_impl("vector") == "vector"

    @pytest.mark.parametrize("workers", [1, 2])
    def test_fig4_adaptive_distributed(self, workers):
        from repro.dist import distributed_verify

        serial = _verify(fig4_program, 4, prune=True, adaptive_clocks=True)
        dist = distributed_verify(
            fig4_program,
            4,
            config=DampiConfig(prune=True, adaptive_clocks=True),
            workers=workers,
        )
        assert _findings(dist) == _findings(serial)
        assert dist.interleavings == serial.interleavings
        assert dist.prune_stats == serial.prune_stats

    def test_adaptive_resume_deterministic(self, tmp_path):
        jdir = tmp_path / "journal"
        first = _verify(fig4_program, 4, adaptive_clocks=True, journal=jdir)
        resumed = _verify(fig4_program, 4, adaptive_clocks=True, journal=jdir)
        assert resumed.journal_stats["executed"] == 0
        assert resumed.prune_stats == first.prune_stats
        assert _findings(resumed) == _findings(first)
