"""Machine-readable report export and wtime."""

import json

import pytest

from repro.dampi.verifier import DampiVerifier
from repro.mpi.runtime import run_program
from repro.workloads.patterns import fig3_program, wildcard_lattice

from tests.conftest import run_ok


class TestReportJson:
    def test_clean_report(self):
        rep = DampiVerifier(
            wildcard_lattice, 3, kwargs={"receives": 2, "senders": 2}
        ).verify()
        payload = json.loads(rep.to_json())
        assert payload["version"] == 3
        assert payload["interleavings"] == 4
        assert payload["errors"] == []
        assert payload["distinct_outcomes"] == 4
        assert len(payload["runs"]) == 4
        assert payload["runs"][0]["flip"] is None

    def test_v3_telemetry_block_is_populated(self):
        rep = DampiVerifier(
            wildcard_lattice, 3, kwargs={"receives": 2, "senders": 2}
        ).verify()
        payload = json.loads(rep.to_json())
        tele = payload["telemetry"]
        counters = tele["metrics"]["counters"]
        assert counters["campaign.runs"] == payload["interleavings"] == 4
        # guided replays rewrite forced receives to concrete sources, so
        # the engine sees fewer wildcard matches than the epoch count
        assert 0 < counters["engine.wildcard_matches"] <= 8
        assert counters["engine.matches"] > 0
        hist = tele["metrics"]["histograms"]["run.wildcard_count"]
        assert sum(hist["counts"]) == 4 and hist["sum"] == 8
        # tracing off by default: no events captured, and the block says so
        assert tele["events"] == {
            "enabled": False, "captured": 0, "dropped": 0,
        }

    def test_v3_carries_wall_seconds_and_per_run_wildcard_counts(self):
        rep = DampiVerifier(
            wildcard_lattice, 3, kwargs={"receives": 2, "senders": 2}
        ).verify()
        payload = json.loads(rep.to_json())
        assert payload["wall_seconds"] == rep.wall_seconds > 0.0
        assert [r["wildcard_count"] for r in payload["runs"]] == [
            r.wildcard_count for r in rep.runs
        ]
        assert all(r["wildcard_count"] == 2 for r in payload["runs"])

    def test_error_report_carries_witness(self):
        rep = DampiVerifier(fig3_program, 3).verify()
        payload = json.loads(rep.to_json())
        (err,) = payload["errors"]
        assert err["kind"] == "crash"
        assert err["witness"] == [[1, 0, 2]]

    def test_json_is_stable_under_roundtrip(self):
        rep = DampiVerifier(fig3_program, 3).verify()
        a = json.loads(rep.to_json())
        b = json.loads(rep.to_json())
        assert a == b


class TestWtime:
    def test_advances_with_compute(self):
        def prog(p):
            t0 = p.wtime()
            p.compute(0.5)
            return p.wtime() - t0

        res = run_ok(prog, 2)
        assert all(abs(v - 0.5) < 1e-9 for v in res.returns.values())

    def test_advances_with_communication(self):
        def prog(p):
            t0 = p.wtime()
            if p.rank == 0:
                p.world.send(b"x" * 4096, dest=1)
            else:
                p.world.recv(source=0)
            return p.wtime() - t0

        res = run_ok(prog, 2)
        assert res.returns[1] > 2.0e-6  # at least the latency
