"""Runtime-level semantics: error attribution, results, replay determinism."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import AbortError, DeadlockError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, SUM
from repro.mpi.runtime import Runtime, run_program

from tests.conftest import run_ok


class TestErrorAttribution:
    def test_primary_error_is_the_raiser(self):
        def prog(p):
            if p.rank == 1:
                raise ValueError("rank 1's own bug")
            p.world.recv(source=1)  # ranks 0 and 2 block forever

        res = run_program(prog, 3)
        primary = res.primary_errors
        assert list(primary) == [1]
        assert isinstance(primary[1], ValueError)
        # collateral aborts recorded but filtered from primary
        assert len(res.errors) == 3

    def test_deadlock_reported_once_in_primary(self):
        def prog(p):
            p.world.recv(source=(p.rank + 1) % p.size)

        res = run_program(prog, 4)
        assert res.deadlocked
        deadlocks = [
            e for e in res.primary_errors.values() if isinstance(e, DeadlockError)
        ]
        assert len(deadlocks) == 1

    def test_explicit_abort_is_primary_for_its_rank(self):
        def prog(p):
            if p.rank == 0:
                p.abort(7)
            else:
                p.world.barrier()

        res = run_program(prog, 2)
        primary = res.primary_errors
        assert list(primary) == [0]
        assert isinstance(primary[0], AbortError)
        assert primary[0].errorcode == 7

    def test_raise_any_noop_when_clean(self):
        res = run_ok(lambda p: None, 2)
        res.raise_any()

    def test_result_repr_states_outcome(self):
        res = run_program(lambda p: None, 2)
        assert "ok" in repr(res)
        res = run_program(lambda p: p.world.recv(source=(p.rank + 1) % 2), 2)
        assert "deadlock" in repr(res)


class TestReturns:
    def test_per_rank_returns(self):
        res = run_ok(lambda p: p.rank * 2, 4)
        assert res.returns == {0: 0, 1: 2, 2: 4, 3: 6}

    def test_args_and_kwargs_forwarded(self):
        def prog(p, a, b=0):
            return a + b + p.rank

        res = run_ok(prog, 2, args=(10,), kwargs={"b": 5})
        assert res.returns == {0: 15, 1: 16}

    def test_failed_rank_has_no_return(self):
        def prog(p):
            if p.rank == 0:
                raise RuntimeError("x")
            return 1

        res = run_program(prog, 2)
        assert 0 not in res.returns


class TestReplayDeterminism:
    """The property guided replays depend on: identical configurations
    produce byte-identical executions under run_to_block."""

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        sends=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=3),  # sender
                st.integers(min_value=0, max_value=2),  # tag
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_wildcard_outcomes_reproducible(self, sends):
        def prog(p):
            if p.rank == 0:
                got = []
                for _ in range(len(sends)):
                    from repro.mpi.request import Status

                    stt = Status()
                    p.world.recv(source=ANY_SOURCE, tag=ANY_TAG, status=stt)
                    got.append((stt.source, stt.tag))
                return tuple(got)
            mine = [t for s, t in sends if s == p.rank]
            for tag in mine:
                p.world.send(p.rank, dest=0, tag=tag)

        outcomes = {run_ok(prog, 4).returns[0] for _ in range(3)}
        assert len(outcomes) == 1

    def test_virtual_times_reproducible(self):
        from repro.workloads.parmetis import parmetis_program

        spans = {
            run_ok(parmetis_program, 4, kwargs={"scale": 0.003}).makespan
            for _ in range(3)
        }
        assert len(spans) == 1


class TestDivergingReplays:
    """Programs whose control flow depends on the match outcome: replays
    legitimately take different paths; the verifier must stay sound."""

    @staticmethod
    def branching(p):
        """Control flow depends on the first match: the `first == 1` branch
        posts two more wildcards, the other drains rank 1 deterministically
        (both branches consume all three messages)."""
        if p.rank == 0:
            first = p.world.recv(source=ANY_SOURCE)
            if first == 1:
                p.world.recv(source=ANY_SOURCE)
                p.world.recv(source=ANY_SOURCE)
            else:
                p.world.recv(source=1)
                p.world.recv(source=1)
        elif p.rank == 1:
            p.world.send(1, dest=0)
            p.world.send(1, dest=0)
        else:
            p.world.send(2, dest=0)

    def test_branching_program_verifies_clean(self):
        from repro.dampi.verifier import DampiVerifier

        rep = DampiVerifier(self.branching, 3).verify()
        assert rep.ok, rep.summary()
        assert rep.interleavings >= 2
        assert len(rep.outcomes) >= 2

    def test_divergence_counter_exposed(self):
        from repro.dampi.config import DampiConfig
        from repro.dampi.verifier import DampiVerifier

        rep = DampiVerifier(self.branching, 3, DampiConfig()).verify()
        assert rep.divergences >= 0  # bookkeeping exists and is non-negative


# ------------------------------------------------------------------ #
# property tests on core runtime invariants                           #
# ------------------------------------------------------------------ #


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    plan=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # tag
            st.integers(min_value=1, max_value=4),  # burst length
        ),
        min_size=1,
        max_size=5,
    )
)
def test_non_overtaking_property(plan):
    """For any send plan over multiple tags, per-(source, tag) receive
    order equals send order — MPI's non-overtaking rule."""

    def prog(p):
        if p.rank == 0:
            seq = 0
            for tag, burst in plan:
                for _ in range(burst):
                    p.world.send(seq, dest=1, tag=tag)
                    seq += 1
        else:
            per_tag = {}
            total = sum(b for _, b in plan)
            from repro.mpi.request import Status

            for _ in range(total):
                stt = Status()
                v = p.world.recv(source=0, tag=ANY_TAG, status=stt)
                per_tag.setdefault(stt.tag, []).append(v)
            return per_tag

    res = run_ok(prog, 2)
    per_tag = res.returns[1]
    for tag, values in per_tag.items():
        assert values == sorted(values), f"tag {tag} overtook: {values}"


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    values=st.lists(st.integers(min_value=-100, max_value=100), min_size=2, max_size=8)
)
def test_allreduce_matches_python_sum(values):
    n = len(values)

    def prog(p):
        return p.world.allreduce(values[p.rank], op=SUM)

    res = run_ok(prog, n)
    assert set(res.returns.values()) == {sum(values)}


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(perm_seed=st.integers(min_value=0, max_value=10**6))
def test_alltoall_is_an_involution(perm_seed):
    """alltoall twice returns each rank's original row."""
    import random

    n = 4
    rng = random.Random(perm_seed)
    rows = [[rng.randrange(100) for _ in range(n)] for _ in range(n)]

    def prog(p):
        once = p.world.alltoall(rows[p.rank])
        twice = p.world.alltoall(once)
        return twice

    res = run_ok(prog, n)
    for r in range(n):
        assert res.returns[r] == rows[r]
