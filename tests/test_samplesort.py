"""Samplesort: correctness, probe idiom, verification invariance."""

import numpy as np
import pytest

from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier
from repro.workloads.samplesort import make_input, samplesort_program, sort_gathered

from tests.conftest import run_ok


class TestSorting:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 5])
    def test_sorts_correctly(self, nprocs):
        n = 60
        res = run_ok(lambda p: sort_gathered(p, n=n), nprocs)
        assert np.array_equal(res.returns[0], np.sort(make_input(n)))

    def test_buckets_are_ordered_across_ranks(self):
        res = run_ok(lambda p: samplesort_program(p, n=48), 4)
        buckets = [res.returns[r] for r in range(4)]
        for a, b in zip(buckets, buckets[1:]):
            if len(a) and len(b):
                assert a[-1] <= b[0]

    def test_duplicate_heavy_input(self):
        # duplicates stress splitter ties
        res = run_ok(lambda p: sort_gathered(p, n=40, seed=1), 4)
        assert np.array_equal(res.returns[0], np.sort(make_input(40, seed=1)))


class TestProbeIdiomUnderDampi:
    def test_probe_epochs_recorded(self):
        cfg = DampiConfig(enable_monitor=False, max_interleavings=1)
        v = DampiVerifier(samplesort_program, 3, cfg, kwargs={"n": 24})
        _, trace = v.run_once()
        probes = [e for e in trace.all_epochs() if e.kind == "probe"]
        assert len(probes) == 9  # size probes per rank

    def test_every_probe_order_sorts_correctly(self):
        """The money test: DAMPI forces alternate probe matches and the
        sort must come out right in every interleaving."""
        n, nprocs = 18, 3
        expected_total = np.sort(make_input(n))

        def checked(p):
            mine = samplesort_program(p, n=n)
            total = p.world.gather(mine, root=0)
            if p.world.rank == 0:
                assert np.array_equal(np.concatenate(total), expected_total)

        cfg = DampiConfig(enable_monitor=False, max_interleavings=150)
        rep = DampiVerifier(checked, nprocs, cfg).verify()
        assert rep.ok, rep.summary()
        assert rep.interleavings > 1  # probe order genuinely varied
