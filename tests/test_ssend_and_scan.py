"""Synchronous sends (rendezvous) and the scan collective."""

import pytest

from repro.mpi.constants import ANY_SOURCE, MAX, SUM
from repro.mpi.runtime import run_program

from tests.conftest import run_ok


class TestSsend:
    def test_ssend_completes_only_on_match(self):
        def prog(p):
            if p.rank == 0:
                req = p.world.issend("sync", dest=1)
                flag, _ = req.test()
                assert not flag  # receiver hasn't posted yet
                p.world.barrier()
                req.wait()
            else:
                p.world.barrier()
                assert p.world.recv(source=0) == "sync"

        run_ok(prog, 2)

    def test_head_to_head_ssend_deadlocks(self):
        """The classic unsafe exchange: eager sends mask it, synchronous
        sends expose it — our engine proves it."""

        def eager(p):
            p.world.send("x", dest=1 - p.rank)
            p.world.recv(source=1 - p.rank)

        def synchronous(p):
            p.world.ssend("x", dest=1 - p.rank)
            p.world.recv(source=1 - p.rank)

        run_ok(eager, 2)
        res = run_program(synchronous, 2)
        assert res.deadlocked

    def test_ssend_vtime_includes_rendezvous(self):
        def prog(p):
            if p.rank == 0:
                p.world.ssend("x", dest=1)
                return p.engine.clocks.now(0)
            p.compute(0.01)  # receiver is late: sender must wait for it
            p.world.recv(source=0)

        res = run_ok(prog, 2)
        assert res.returns[0] >= 0.01

    def test_unmatched_ssend_is_a_deadlock(self):
        def prog(p):
            if p.rank == 0:
                p.world.ssend("never received", dest=1)

        res = run_program(prog, 2)
        assert res.deadlocked

    def test_ssend_under_dampi_verification(self):
        """Wildcard matching over synchronous senders still gets full
        coverage and finds the alternate-match crash."""
        from repro.dampi.verifier import DampiVerifier

        def prog(p):
            if p.rank == 0:
                x = p.world.recv(source=ANY_SOURCE)
                p.world.recv(source=ANY_SOURCE)
                if x == 2:
                    raise RuntimeError("alternate match")
            else:
                p.world.ssend(p.rank, dest=0)

        rep = DampiVerifier(prog, 3).verify()
        assert rep.interleavings == 2
        assert any(e.kind == "crash" for e in rep.errors), rep.summary()

    def test_ssend_nonovertaking_with_eager(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("first", dest=1, tag=1)
                req = p.world.issend("second", dest=1, tag=1)
                p.world.barrier()
                req.wait()
            else:
                p.world.barrier()
                assert p.world.recv(source=0, tag=1) == "first"
                assert p.world.recv(source=0, tag=1) == "second"

        run_ok(prog, 2)


class TestScan:
    def test_inclusive_prefix_sum(self):
        def prog(p):
            return p.world.scan(p.rank + 1, op=SUM)

        res = run_ok(prog, 5)
        assert res.returns == {r: (r + 1) * (r + 2) // 2 for r in range(5)}

    def test_scan_default_op_sum(self):
        def prog(p):
            return p.world.scan(1)

        res = run_ok(prog, 4)
        assert res.returns == {r: r + 1 for r in range(4)}

    def test_scan_max(self):
        vals = [3, 1, 7, 2]

        def prog(p):
            return p.world.scan(vals[p.rank], op=MAX)

        res = run_ok(prog, 4)
        assert res.returns == {0: 3, 1: 3, 2: 7, 3: 7}

    def test_rank0_does_not_wait_for_others(self):
        def prog(p):
            if p.rank == 0:
                v = p.world.scan(1, op=SUM)  # completes alone
                p.world.send(v, dest=1)
            else:
                assert p.world.recv(source=0) == 1
                p.world.scan(1, op=SUM)

        run_ok(prog, 2)

    def test_higher_rank_waits_for_lower(self):
        def prog(p):
            if p.rank == 1:
                p.compute(0.0)
                v = p.world.scan(1, op=SUM)  # needs rank 0's entry
                assert v == 2
            else:
                p.compute(0.005)
                p.world.scan(1, op=SUM)
            return p.engine.clocks.now(p.rank)

        res = run_ok(prog, 2)
        assert res.returns[1] >= 0.005  # rank 1 waited for rank 0

    def test_scan_missing_lower_rank_deadlocks(self):
        def prog(p):
            if p.rank == 1:
                p.world.scan(1, op=SUM)  # rank 0 never joins

        res = run_program(prog, 2)
        assert res.deadlocked

    def test_scan_under_dampi_clock_exchange(self):
        """The shadow scan must carry clocks only downward: rank 0 must not
        learn rank 2's wildcard tick through a scan."""
        from repro.dampi.clock_module import DampiClockModule
        from repro.dampi.piggyback import PiggybackModule

        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=2)
            if p.rank == 2:
                p.world.recv(source=ANY_SOURCE)  # rank 2 ticks
            p.world.scan(1, op=SUM)

        pb = PiggybackModule()
        clock = DampiClockModule(pb)
        res = run_program(prog, 3, modules=[clock, pb])
        res.raise_any()
        assert clock.clock_of(0).time == 0  # no upward flow
        assert clock.clock_of(2).time == 1


class TestTracingAndIsp:
    def test_classification(self):
        from repro.mpi.tracing import CLASSIFICATION, OpClass

        assert CLASSIFICATION["issend"] is OpClass.SEND_RECV
        assert CLASSIFICATION["scan"] is OpClass.COLLECTIVE

    def test_isp_charges_both(self):
        from repro.isp.scheduler import IspInterpositionModule

        def prog(p):
            if p.rank == 0:
                p.world.ssend("x", dest=1)
            else:
                p.world.recv(source=0)
            p.world.scan(1, op=SUM)

        mod = IspInterpositionModule()
        res = run_ok(prog, 2, modules=[mod])
        # rank0: issend+wait; rank1: irecv+wait; both: scan = 6
        assert res.artifacts["isp"]["round_trips"] == 6
