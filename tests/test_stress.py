"""Stress and scale tests: free-threaded mode, larger rank counts."""

import pytest

from repro.adlb import adlb_run, batch_app
from repro.dampi.clock_module import DampiClockModule
from repro.dampi.piggyback import PiggybackModule
from repro.mpi.constants import ANY_SOURCE, SUM
from repro.mpi.runtime import run_program

from tests.conftest import run_ok


class TestFreeModeStress:
    """Free threading races real OS scheduling against engine locking;
    every semantic invariant must survive it."""

    def test_funnel_conserves_messages(self):
        def prog(p):
            if p.rank == 0:
                got = sorted(
                    p.world.recv(source=ANY_SOURCE) for _ in range(3 * (p.size - 1))
                )
                assert got == sorted(list(range(1, p.size)) * 3)
            else:
                for _ in range(3):
                    p.world.send(p.rank, dest=0)

        for _ in range(5):
            run_ok(prog, 8, mode="free")

    def test_collectives_under_contention(self):
        def prog(p):
            total = 0
            for i in range(20):
                total = p.world.allreduce(p.rank + i, op=SUM)
            return total

        res = run_ok(prog, 12, mode="free")
        assert len(set(res.returns.values())) == 1

    def test_adlb_in_free_mode(self):
        def job(p):
            return adlb_run(p, batch_app, num_servers=2, units_per_worker=2)

        for _ in range(3):
            res = run_ok(job, 8, mode="free")
            total = sum(v[0] for v in res.returns.values() if v is not None)
            assert total == 12

    def test_dampi_self_run_in_free_mode(self):
        """DAMPI's analysis must stay consistent even when the self run is
        scheduled by the OS (the paper's deployment reality)."""

        def prog(p):
            if p.rank == 0:
                for _ in range(p.size - 1):
                    p.world.recv(source=ANY_SOURCE)
            else:
                p.world.send(p.rank, dest=0)

        pb = PiggybackModule()
        cm = DampiClockModule(pb)
        res = run_program(prog, 6, modules=[cm, pb], mode="free")
        res.raise_any()
        trace = res.artifacts["dampi"]
        assert trace.wildcard_count == 5
        assert all(e.matched_source is not None for e in trace.all_epochs())


class TestModeEquivalence:
    """Deterministic programs must compute identical results in all three
    scheduling modes — randomized over program structure."""

    from hypothesis import HealthCheck, given, settings, strategies as st

    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        ops=st.lists(
            st.sampled_from(["allreduce", "scan", "ring", "bcast", "gather"]),
            min_size=1,
            max_size=6,
        ),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_three_modes_agree(self, ops, seed):
        from repro.mpi.constants import SUM

        def prog(p):
            acc = float(seed % 7)
            for i, op in enumerate(ops):
                if op == "allreduce":
                    acc = p.world.allreduce(acc + p.rank, op=SUM)
                elif op == "scan":
                    acc += p.world.scan(1, op=SUM)
                elif op == "ring":
                    r = p.world.irecv(source=(p.rank - 1) % p.size, tag=i)
                    p.world.send(acc, dest=(p.rank + 1) % p.size, tag=i)
                    r.wait()
                    acc += r.data
                elif op == "bcast":
                    acc += p.world.bcast(acc if p.rank == 0 else None, root=0)
                elif op == "gather":
                    g = p.world.gather(acc, root=0)
                    acc = sum(g) if p.rank == 0 else acc
            return round(acc, 6)

        results = {
            mode: run_ok(prog, 4, mode=mode).returns
            for mode in ("run_to_block", "rr", "free")
        }
        assert results["run_to_block"] == results["rr"] == results["free"]


class TestScale:
    def test_512_ranks_collectives(self):
        def prog(p):
            assert p.world.allreduce(1, op=SUM) == p.size
            assert p.world.scan(1, op=SUM) == p.rank + 1
            p.world.barrier()

        run_ok(prog, 512)

    def test_256_ranks_instrumented(self):
        def prog(p):
            right = (p.rank + 1) % p.size
            left = (p.rank - 1) % p.size
            req = p.world.irecv(source=left)
            p.world.send(p.rank, dest=right)
            req.wait()
            p.world.allreduce(1, op=SUM)

        pb = PiggybackModule()
        cm = DampiClockModule(pb)
        res = run_program(prog, 256, modules=[cm, pb])
        res.raise_any()

    def test_deep_split_tree(self):
        def prog(p):
            comm = p.world
            created = []
            while comm.size > 1:
                comm = comm.split(color=comm.rank // (comm.size // 2 or 1), key=comm.rank)
                created.append(comm)
            for c in reversed(created):
                c.free()

        run_ok(prog, 16)

    def test_many_outstanding_requests(self):
        def prog(p):
            if p.rank == 0:
                reqs = [p.world.irecv(source=1, tag=i) for i in range(200)]
                p.waitall(reqs)
                assert sorted(r.data for r in reqs) == list(range(200))
            else:
                for i in range(200):
                    p.world.send(i, dest=0, tag=i)

        run_ok(prog, 2)
