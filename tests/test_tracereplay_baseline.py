"""The record/replay baseline (§IV) and its pinned limitation."""

import pytest

from repro.baselines import RecordedTrace, record_run, replay_run
from repro.errors import ReplayDivergenceError
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.request import Status
from repro.workloads.patterns import fig3_program


def funnel(p):
    """Rank 0 wildcard-receives one message from each other rank and
    returns the source order — the observable schedule."""
    if p.rank == 0:
        order = []
        st = Status()
        for _ in range(p.size - 1):
            p.world.recv(source=ANY_SOURCE, status=st)
            order.append(st.source)
        return tuple(order)
    p.world.send(p.rank, dest=0)
    return None


class TestRecord:
    def test_records_resolved_sources(self):
        result, trace = record_run(funnel, 4)
        result.raise_any()
        recorded = [src for kind, src, tag in trace.events[0]]
        assert sorted(recorded) == [1, 2, 3]
        assert len(trace) == 3

    def test_json_roundtrip(self, tmp_path):
        _, trace = record_run(funnel, 3)
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = RecordedTrace.load(path)
        assert loaded.events == trace.events
        assert loaded.nprocs == trace.nprocs

    def test_probe_outcomes_recorded(self):
        def prog(p):
            if p.rank == 0:
                st = p.world.probe(source=ANY_SOURCE)
                p.world.recv(source=st.source)
            else:
                p.world.send("m", dest=0)

        _, trace = record_run(prog, 2)
        kinds = [k for k, _, _ in trace.events[0]]
        assert kinds == ["probe", "recv"]


class TestReplay:
    def test_replay_reproduces_the_schedule(self):
        # record under one policy, replay under another: the recorded
        # matches win over the runtime's own preference
        result, trace = record_run(funnel, 4, policy="highest_rank")
        original = result.returns[0]
        for other_policy in ("lowest_rank", "arrival", "random:5"):
            replayed = replay_run(funnel, 4, trace, policy=other_policy)
            replayed.raise_any()
            assert replayed.returns[0] == original

    def test_rank_count_mismatch_rejected_at_setup(self):
        _, trace = record_run(funnel, 3)
        with pytest.raises(ReplayDivergenceError):
            replay_run(funnel, 4, trace)

    def test_extra_receive_diverges(self):
        _, trace = record_run(funnel, 3)

        def longer(p):
            funnel(p)
            if p.rank == 0:
                p.world.irecv(source=ANY_SOURCE)  # one more than recorded

        res = replay_run(longer, 3, trace)
        assert any(
            isinstance(e, ReplayDivergenceError) for e in res.primary_errors.values()
        )

    def test_deterministic_source_validated(self):
        def det(p):
            if p.rank == 0:
                p.world.recv(source=1)
            elif p.rank == 1:
                p.world.send("x", dest=0)

        _, trace = record_run(det, 2)

        def different(p):
            if p.rank == 0:
                p.world.recv(source=2)
            elif p.rank == 2:
                p.world.send("x", dest=0)

        res = replay_run(different, 3, RecordedTrace(nprocs=3, events=trace.events))
        assert not res.ok


class TestTheLimitationThePaperDescribes:
    """§IV: 'these trace-based tools only replay the observed schedule.
    They do not have the ability to ... derive alternate schedules.'"""

    def test_replay_never_finds_the_fig3_bug(self):
        result, trace = record_run(fig3_program, 3)
        result.raise_any()  # the native schedule is the benign one
        # replay it any number of times: always the benign schedule
        for _ in range(5):
            replayed = replay_run(fig3_program, 3, trace)
            replayed.raise_any()

    def test_dampi_finds_it_from_the_same_starting_point(self):
        from repro.dampi.verifier import DampiVerifier

        rep = DampiVerifier(fig3_program, 3).verify()
        assert any(e.kind == "crash" for e in rep.errors)
