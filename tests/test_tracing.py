"""Operation tracing: Table I classification rules."""

from repro.mpi.constants import ANY_SOURCE, SUM
from repro.mpi.tracing import CLASSIFICATION, OpClass, TraceModule

from tests.conftest import run_ok


def traced(prog, nprocs, **kw):
    tm = TraceModule()
    res = run_ok(prog, nprocs, modules=[tm], **kw)
    return res.artifacts["trace"]


class TestClassification:
    def test_p2p_counts(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=1)  # isend + wait
            else:
                p.world.recv(source=0)  # irecv + wait

        report = traced(prog, 2)
        assert report.total(OpClass.SEND_RECV) == 2  # one isend + one irecv
        assert report.total(OpClass.WAIT) == 2

    def test_collective_counts(self):
        def prog(p):
            p.world.barrier()
            p.world.allreduce(1, op=SUM)
            p.world.bcast("x" if p.rank == 0 else None, root=0)

        report = traced(prog, 3)
        assert report.total(OpClass.COLLECTIVE) == 9

    def test_waitall_counts_once(self):
        def prog(p):
            if p.rank == 0:
                reqs = [p.world.irecv(source=1) for _ in range(4)]
                p.waitall(reqs)
            else:
                for i in range(4):
                    p.world.send(i, dest=0)

        report = traced(prog, 2)
        # rank 0: 1 waitall; rank 1: 4 send-side waits
        assert report.total(OpClass.WAIT) == 5

    def test_local_ops_excluded_from_all(self):
        def prog(p):
            dup = p.world.dup()
            dup.free()
            p.pcontrol(1)
            p.pcontrol(0)

        report = traced(prog, 2)
        # comm_dup is collective; free and pcontrol are local
        assert report.total() == report.total(OpClass.COLLECTIVE) == 2

    def test_per_proc_average(self):
        def prog(p):
            if p.rank == 0:
                for i in range(6):
                    p.world.send(i, dest=1)
            else:
                for _ in range(6):
                    p.world.recv(source=0)

        report = traced(prog, 2)
        assert report.per_proc(OpClass.SEND_RECV) == 6.0

    def test_row_keys_match_table1(self):
        def prog(p):
            p.world.barrier()

        report = traced(prog, 2)
        assert set(report.row()) == {
            "All",
            "All per proc",
            "Send-Recv",
            "Send-Recv per proc",
            "Collective",
            "Collective per proc",
            "Wait",
            "Wait per proc",
        }

    def test_probes_are_send_recv_class(self):
        assert CLASSIFICATION["probe"] is OpClass.SEND_RECV
        assert CLASSIFICATION["iprobe"] is OpClass.SEND_RECV

    def test_wildcard_traffic_counted_once(self):
        """DAMPI's piggyback traffic must not inflate application counts."""
        from repro.dampi.clock_module import DampiClockModule
        from repro.dampi.piggyback import PiggybackModule

        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=1)
            else:
                p.world.recv(source=ANY_SOURCE)

        tm = TraceModule()
        pb = PiggybackModule()
        res = run_ok(prog, 2, modules=[tm, DampiClockModule(pb), pb])
        report = res.artifacts["trace"]
        assert report.total(OpClass.SEND_RECV) == 2
