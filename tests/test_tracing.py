"""Operation tracing: Table I classification rules."""

from repro.mpi.constants import ANY_SOURCE, SUM
from repro.mpi.tracing import CLASSIFICATION, OpClass, TraceModule

from tests.conftest import run_ok


def traced(prog, nprocs, **kw):
    tm = TraceModule()
    res = run_ok(prog, nprocs, modules=[tm], **kw)
    return res.artifacts["trace"]


class TestClassification:
    def test_p2p_counts(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=1)  # isend + wait
            else:
                p.world.recv(source=0)  # irecv + wait

        report = traced(prog, 2)
        assert report.total(OpClass.SEND_RECV) == 2  # one isend + one irecv
        assert report.total(OpClass.WAIT) == 2

    def test_collective_counts(self):
        def prog(p):
            p.world.barrier()
            p.world.allreduce(1, op=SUM)
            p.world.bcast("x" if p.rank == 0 else None, root=0)

        report = traced(prog, 3)
        assert report.total(OpClass.COLLECTIVE) == 9

    def test_waitall_counts_once(self):
        def prog(p):
            if p.rank == 0:
                reqs = [p.world.irecv(source=1) for _ in range(4)]
                p.waitall(reqs)
            else:
                for i in range(4):
                    p.world.send(i, dest=0)

        report = traced(prog, 2)
        # rank 0: 1 waitall; rank 1: 4 send-side waits
        assert report.total(OpClass.WAIT) == 5

    def test_local_ops_excluded_from_all(self):
        def prog(p):
            dup = p.world.dup()
            dup.free()
            p.pcontrol(1)
            p.pcontrol(0)

        report = traced(prog, 2)
        # comm_dup is collective; free and pcontrol are local
        assert report.total() == report.total(OpClass.COLLECTIVE) == 2

    def test_per_proc_average(self):
        def prog(p):
            if p.rank == 0:
                for i in range(6):
                    p.world.send(i, dest=1)
            else:
                for _ in range(6):
                    p.world.recv(source=0)

        report = traced(prog, 2)
        assert report.per_proc(OpClass.SEND_RECV) == 6.0

    def test_row_keys_match_table1(self):
        def prog(p):
            p.world.barrier()

        report = traced(prog, 2)
        assert set(report.row()) == {
            "All",
            "All per proc",
            "Send-Recv",
            "Send-Recv per proc",
            "Collective",
            "Collective per proc",
            "Wait",
            "Wait per proc",
        }

    def test_probes_are_send_recv_class(self):
        assert CLASSIFICATION["probe"] is OpClass.SEND_RECV
        assert CLASSIFICATION["iprobe"] is OpClass.SEND_RECV

    def test_wildcard_traffic_counted_once(self):
        """DAMPI's piggyback traffic must not inflate application counts."""
        from repro.dampi.clock_module import DampiClockModule
        from repro.dampi.piggyback import PiggybackModule

        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=1)
            else:
                p.world.recv(source=ANY_SOURCE)

        tm = TraceModule()
        pb = PiggybackModule()
        res = run_ok(prog, 2, modules=[tm, DampiClockModule(pb), pb])
        report = res.artifacts["trace"]
        assert report.total(OpClass.SEND_RECV) == 2


class TestClassificationCompleteness:
    """Satellite: every interposable entry point must be classified, so a
    new entry point cannot silently fall out of Table I (a missing key
    would KeyError inside TraceModule._bump at runtime)."""

    def test_every_entry_point_is_classified(self):
        from repro.pnmpi.module import ENTRY_POINTS

        missing = [p for p in ENTRY_POINTS if p not in CLASSIFICATION]
        assert not missing, f"unclassified entry points: {missing}"

    def test_new_points_have_paper_classes(self):
        assert CLASSIFICATION["ssend"] is OpClass.SEND_RECV
        assert CLASSIFICATION["sendrecv"] is OpClass.SEND_RECV
        assert CLASSIFICATION["waitsome"] is OpClass.WAIT
        assert CLASSIFICATION["testall"] is OpClass.WAIT


class TestBatchedOpCounts:
    """ssend/sendrecv/waitsome/testall are compositions over instrumented
    constituents; Table I counts each as ONE application call."""

    def test_ssend_counts_once(self):
        def prog(p):
            if p.rank == 0:
                p.world.ssend("x", dest=1)
            else:
                p.world.recv(source=0)

        report = traced(prog, 2)
        # rank 0: 1 ssend; rank 1: 1 irecv (+1 wait)
        assert report.total(OpClass.SEND_RECV) == 2
        assert report.total(OpClass.WAIT) == 1

    def test_sendrecv_counts_once(self):
        def prog(p):
            peer = 1 - p.rank
            p.world.sendrecv(p.rank, dest=peer, source=peer)

        report = traced(prog, 2)
        assert report.total(OpClass.SEND_RECV) == 2  # one per rank
        assert report.total(OpClass.WAIT) == 0

    def test_waitsome_counts_once(self):
        def prog(p):
            if p.rank == 0:
                reqs = [p.world.irecv(source=1) for _ in range(3)]
                done = 0
                while done < 3:
                    indices, _ = p.waitsome(reqs)
                    done += len(indices)
                    reqs = [r for i, r in enumerate(reqs) if i not in indices]
            else:
                for i in range(3):
                    p.world.send(i, dest=0)

        report = traced(prog, 2)
        # rank 1: 3 send-side waits; rank 0: one Wait per waitsome round
        per0 = report.per_rank[0]
        assert per0[OpClass.WAIT] >= 1
        assert per0[OpClass.SEND_RECV] == 3  # the irecvs, outside any batch

    def test_testall_counts_once_per_call(self):
        def prog(p):
            if p.rank == 0:
                reqs = [p.world.irecv(source=1) for _ in range(2)]
                calls = 0
                while True:
                    calls += 1
                    ok, _ = p.testall(reqs)
                    if ok:
                        return calls
            else:
                p.world.send(0, dest=0)
                p.world.send(1, dest=0)

        tm = TraceModule()
        res = run_ok(prog, 2, modules=[tm])
        report = res.artifacts["trace"]
        calls = res.returns[0]
        # every testall call counts once; the consuming waits do not
        assert report.per_rank[0][OpClass.WAIT] == calls
