"""End-to-end verification: coverage, error finding, witnesses, bounds."""

from dataclasses import replace

import pytest

from repro.dampi.config import DampiConfig
from repro.dampi.decisions import EpochDecisions
from repro.dampi.verifier import DampiVerifier, measure_slowdown
from repro.mpi.constants import ANY_SOURCE
from repro.workloads.patterns import (
    WildcardBugError,
    deadlock_program,
    fig3_program,
    fig4_program,
    fig10_program,
    orphan_resources_program,
    wildcard_lattice,
)


class TestCoverage:
    @pytest.mark.parametrize("receives,senders", [(1, 2), (2, 2), (2, 3), (3, 2)])
    def test_lattice_full_coverage(self, receives, senders):
        rep = DampiVerifier(
            wildcard_lattice,
            senders + 1,
            kwargs={"receives": receives, "senders": senders},
        ).verify()
        assert rep.interleavings == senders**receives
        assert len(rep.outcomes) == senders**receives

    def test_no_redundant_runs_on_lattice(self):
        rep = DampiVerifier(
            wildcard_lattice, 4, kwargs={"receives": 2, "senders": 3}
        ).verify()
        # every run produced a distinct outcome: the walk is non-redundant
        assert rep.interleavings == len(rep.outcomes) == 9

    def test_deterministic_program_single_run(self):
        def prog(p):
            if p.rank == 0:
                p.world.send("x", dest=1)
            else:
                p.world.recv(source=0)

        rep = DampiVerifier(prog, 2).verify()
        assert rep.interleavings == 1
        assert rep.wildcards_analyzed == 0
        assert rep.ok

    def test_inline_piggyback_same_coverage(self):
        cfg = DampiConfig(piggyback="inline")
        rep = DampiVerifier(
            wildcard_lattice, 4, cfg, kwargs={"receives": 2, "senders": 3}
        ).verify()
        assert rep.interleavings == 9


class TestErrorFinding:
    def test_fig3_heisenbug_found_with_witness(self):
        rep = DampiVerifier(fig3_program, 3).verify()
        crashes = [e for e in rep.errors if e.kind == "crash"]
        assert len(crashes) == 1
        assert "WildcardBugError" in crashes[0].detail
        wit = crashes[0].decisions
        assert wit is not None and wit.forced == {(1, 0): 2}

    def test_fig3_witness_replays_the_bug(self):
        rep = DampiVerifier(fig3_program, 3).verify()
        wit = rep.errors[0].decisions
        v = DampiVerifier(fig3_program, 3)
        result, _ = v.run_once(EpochDecisions(forced=dict(wit.forced), flip=wit.flip))
        assert any(
            isinstance(e, WildcardBugError) for e in result.primary_errors.values()
        )

    def test_deadlock_reported_once(self):
        rep = DampiVerifier(deadlock_program, 2).verify()
        assert len(rep.deadlocks) == 1
        assert rep.interleavings == 1  # no wildcards: nothing to explore

    def test_error_dedup_across_runs(self):
        """The same leak fires every run; the report lists it once."""
        rep = DampiVerifier(
            wildcard_lattice, 3, kwargs={"receives": 2, "senders": 2}
        ).verify()
        rep2 = DampiVerifier(orphan_resources_program, 3).verify()
        kinds = [e.kind for e in rep2.errors]
        assert kinds.count("request_leak") == 1

    def test_leaks_reported(self):
        rep = DampiVerifier(orphan_resources_program, 3).verify()
        assert any(e.kind == "communicator_leak" for e in rep.errors)
        assert any(e.kind == "request_leak" for e in rep.errors)
        assert rep.leak_report.has_comm_leak
        assert rep.leak_report.has_request_leak


class TestClockImplComparison:
    def test_fig4_lamport_incomplete(self):
        rep = DampiVerifier(fig4_program, 4, DampiConfig(clock_impl="lamport")).verify()
        assert rep.interleavings == 1  # cross matches invisible to LC

    def test_fig4_vector_complete(self):
        rep = DampiVerifier(fig4_program, 4, DampiConfig(clock_impl="vector")).verify()
        assert rep.interleavings == 3
        assert rep.deadlocks  # the cross matchings starve a receive

    def test_vector_coverage_superset_of_lamport(self):
        for kwargs in ({"receives": 2, "senders": 2}, {"receives": 3, "senders": 2}):
            rl = DampiVerifier(
                wildcard_lattice, 3, DampiConfig(clock_impl="lamport"), kwargs=kwargs
            ).verify()
            rv = DampiVerifier(
                wildcard_lattice, 3, DampiConfig(clock_impl="vector"), kwargs=kwargs
            ).verify()
            assert rl.outcomes <= rv.outcomes


class TestMonitor:
    def test_fig10_omission_alert(self):
        rep = DampiVerifier(fig10_program, 3).verify()
        assert rep.monitor_report.triggered
        alert = rep.monitor_report.alerts[0]
        assert alert.rank == 1 and alert.operation == "barrier"

    def test_fig10_bug_is_indeed_missed(self):
        """The monitor exists because DAMPI cannot explore the alternate
        match here — confirm the omission (no crash found, 1 interleaving)."""
        rep = DampiVerifier(fig10_program, 3).verify()
        assert rep.interleavings == 1
        assert not any(e.kind == "crash" for e in rep.errors)

    def test_clean_program_no_alerts(self):
        rep = DampiVerifier(
            wildcard_lattice, 3, kwargs={"receives": 2, "senders": 2}
        ).verify()
        assert not rep.monitor_report.triggered


class TestBudgets:
    def test_max_interleavings_truncates(self):
        cfg = DampiConfig(max_interleavings=5)
        rep = DampiVerifier(
            wildcard_lattice, 4, cfg, kwargs={"receives": 3, "senders": 3}
        ).verify()
        assert rep.interleavings == 5
        assert rep.truncated

    def test_exact_budget_not_flagged_truncated(self):
        cfg = DampiConfig(max_interleavings=4)
        rep = DampiVerifier(
            wildcard_lattice, 3, cfg, kwargs={"receives": 2, "senders": 2}
        ).verify()
        assert rep.interleavings == 4
        assert not rep.truncated

    def test_bound_k_zero_linear(self):
        cfg = DampiConfig(bound_k=0)
        rep = DampiVerifier(
            wildcard_lattice, 4, cfg, kwargs={"receives": 4, "senders": 3}
        ).verify()
        # 1 self run + 4 epochs x 2 alternatives each
        assert rep.interleavings == 1 + 4 * 2

    def test_bound_k_monotone(self):
        counts = []
        for k in (0, 1, 2, None):
            cfg = DampiConfig(bound_k=k)
            rep = DampiVerifier(
                wildcard_lattice, 4, cfg, kwargs={"receives": 3, "senders": 3}
            ).verify()
            counts.append(rep.interleavings)
        assert counts == sorted(counts)
        assert counts[-1] == 27


class TestReport:
    def test_summary_mentions_errors(self):
        rep = DampiVerifier(fig3_program, 3).verify()
        text = rep.summary()
        assert "ERRORS" in text and "crash" in text

    def test_summary_clean(self):
        rep = DampiVerifier(
            wildcard_lattice, 3, kwargs={"receives": 1, "senders": 2}
        ).verify()
        assert "no errors found" in rep.summary()

    def test_keep_traces(self):
        cfg = DampiConfig(keep_traces=True)
        rep = DampiVerifier(
            wildcard_lattice, 3, cfg, kwargs={"receives": 2, "senders": 2}
        ).verify()
        assert len(rep.traces) == rep.interleavings

    def test_run_records(self):
        rep = DampiVerifier(
            wildcard_lattice, 3, kwargs={"receives": 2, "senders": 2}
        ).verify()
        assert rep.runs[0].flip is None  # self run
        assert all(r.flip is not None for r in rep.runs[1:])


class TestPersistentSession:
    """Satellite: the persistent replay session (one runtime + parked rank
    threads reused across guided replays) is a pure optimisation — its
    reports must be bit-identical to fresh-runtime-per-run execution, and
    no state may bleed between the runs it hosts."""

    def _fp(self, rep):
        from tests.test_parallel import _report_fingerprint

        return _report_fingerprint(rep)

    def test_pooled_reports_bit_identical_to_fresh(self):
        kwargs = {"receives": 3, "senders": 3}
        pooled = DampiVerifier(wildcard_lattice, 4, kwargs=kwargs).verify()
        fresh = DampiVerifier(
            wildcard_lattice,
            4,
            DampiConfig(persistent_session=False),
            kwargs=kwargs,
        ).verify()
        assert self._fp(pooled) == self._fp(fresh)

    def test_pooled_error_finding_bit_identical_to_fresh(self):
        pooled = DampiVerifier(fig3_program, 3).verify()
        fresh = DampiVerifier(
            fig3_program, 3, DampiConfig(persistent_session=False)
        ).verify()
        assert self._fp(pooled) == self._fp(fresh)
        assert (
            pooled.errors[0].decisions.forced == fresh.errors[0].decisions.forced
        )

    def test_same_verification_twice_identical(self):
        # a second full verification (its own session) observes nothing of
        # the first — the session dies with the verifier
        reps = [DampiVerifier(fig3_program, 3).verify() for _ in range(2)]
        assert self._fp(reps[0]) == self._fp(reps[1])

    def test_session_engages_on_second_run_and_reuses_runtime(self):
        v = DampiVerifier(
            wildcard_lattice, 3, kwargs={"receives": 2, "senders": 2}
        )
        try:
            v.run_once()
            assert v._session is None  # single runs never pay for a session
            v.run_once()
            assert v._session is not None
            runtime, pool = v._session.runtime, v._session.pool
            v.run_once()
            assert v._session.runtime is runtime  # recycled, not rebuilt
            assert v._session.pool is pool
        finally:
            v.close()
        assert v._session is None

    def test_policy_instance_bypasses_session(self):
        # a policy object may carry hidden state across runs (seeded RNG);
        # only string specs are session-safe
        from repro.mpi.matching import SeededRandomPolicy

        v = DampiVerifier(
            wildcard_lattice,
            3,
            DampiConfig(policy=SeededRandomPolicy(7)),
            kwargs={"receives": 2, "senders": 2},
        )
        try:
            v.run_once()
            v.run_once()
            assert v._session is None
        finally:
            v.close()

    def test_session_disabled_by_config(self):
        v = DampiVerifier(
            wildcard_lattice,
            3,
            DampiConfig(persistent_session=False),
            kwargs={"receives": 2, "senders": 2},
        )
        try:
            v.run_once()
            v.run_once()
            assert v._session is None
        finally:
            v.close()


class TestMeasureSlowdown:
    def test_reports_fields(self):
        def prog(p):
            if p.rank == 0:
                p.world.recv(source=ANY_SOURCE)
            else:
                p.world.send(1, dest=0)

        m = measure_slowdown(prog, 2)
        assert m["slowdown"] >= 1.0
        assert m["wildcards"] == 1
        assert not m["comm_leak"] and not m["request_leak"]
