"""Virtual-time invariants of the cost model, property-tested."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mpi.constants import SUM
from repro.mpi.runtime import Runtime, run_program

from tests.conftest import run_ok


class ClockProbe:
    """Samples per-rank clocks inside a program via closures."""

    def __init__(self):
        self.samples = {}

    def snap(self, p, label):
        self.samples.setdefault(p.rank, []).append((label, p.wtime()))


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    computes=st.lists(
        st.floats(min_value=0.0, max_value=1e-3, allow_nan=False), min_size=2, max_size=6
    )
)
def test_clocks_monotone_per_rank(computes):
    probe = ClockProbe()

    def prog(p):
        for i, c in enumerate(computes):
            probe.snap(p, i)
            p.compute(c)
            if i % 2 == 0:
                p.world.allreduce(1, op=SUM)
        probe.snap(p, "end")

    probe.samples.clear()
    run_ok(prog, 3)
    for rank, samples in probe.samples.items():
        times = [t for _, t in samples]
        assert times == sorted(times), f"rank {rank} clock went backwards"


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    loads=st.lists(
        st.floats(min_value=0.0, max_value=0.01, allow_nan=False), min_size=2, max_size=6
    )
)
def test_makespan_bounds(loads):
    """max(individual compute) <= makespan <= sum(compute) + comm slack."""

    def prog(p):
        p.compute(loads[p.rank])
        p.world.barrier()

    res = run_ok(prog, len(loads))
    assert res.makespan >= max(loads)
    assert res.makespan <= sum(loads) + 1e-3  # far below the serial sum + slack


def test_receive_completion_not_before_send():
    """A receive's completion time can never precede its send's issue."""

    def prog(p):
        if p.rank == 0:
            p.compute(1e-3)
            t_send = p.wtime()
            p.world.send(t_send, dest=1)
        else:
            t_send = p.world.recv(source=0)
            assert p.wtime() >= t_send

    run_ok(prog, 2)


def test_barrier_aligns_clocks():
    def prog(p):
        p.compute(1e-4 * (p.rank + 1))
        p.world.barrier()
        return p.wtime()

    res = run_ok(prog, 4)
    times = list(res.returns.values())
    assert max(times) - min(times) < 1e-6


def test_synchronizing_collective_completion_after_last_entry():
    def prog(p):
        if p.rank == 2:
            p.compute(5e-3)  # the straggler
        p.world.allreduce(1, op=SUM)
        return p.wtime()

    res = run_ok(prog, 3)
    assert all(t >= 5e-3 for t in res.returns.values())


def test_bcast_nonroot_waits_for_root_not_siblings():
    def prog(p):
        if p.rank == 0:
            p.compute(1e-3)  # slow root
        if p.rank == 2:
            p.compute(8e-3)  # very slow sibling, irrelevant to rank 1
        p.world.bcast("x" if p.rank == 0 else None, root=0)
        return p.wtime()

    res = run_ok(prog, 3)
    assert res.returns[1] >= 1e-3  # waited for root
    assert res.returns[1] < 5e-3  # did NOT wait for the slow sibling


class TestCoverageIndependentOfNativePolicy:
    """DAMPI's guarantee must not depend on which schedule the self run
    happens to produce: different native policies explore the same
    outcome set (possibly via different run orders)."""

    @pytest.mark.parametrize(
        "kwargs", [{"receives": 2, "senders": 2}, {"receives": 3, "senders": 2}]
    )
    def test_policies_converge_to_same_outcomes(self, kwargs):
        from repro.dampi.config import DampiConfig
        from repro.dampi.verifier import DampiVerifier
        from repro.workloads.patterns import wildcard_lattice

        outcome_sets = []
        for policy in ("arrival", "lowest_rank", "highest_rank", "random:3"):
            cfg = DampiConfig(policy=policy, enable_monitor=False)
            rep = DampiVerifier(
                wildcard_lattice, 3, cfg, kwargs=kwargs
            ).verify()
            outcome_sets.append(rep.outcomes)
        assert all(s == outcome_sets[0] for s in outcome_sets)


class TestAdlbConservationProperty:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        units=st.integers(min_value=0, max_value=4),
        servers=st.integers(min_value=1, max_value=2),
        workers=st.integers(min_value=1, max_value=4),
    )
    def test_work_conserved(self, units, servers, workers):
        from repro.adlb import adlb_run, batch_app

        nprocs = servers + workers

        def job(p):
            return adlb_run(p, batch_app, num_servers=servers, units_per_worker=units)

        res = run_ok(job, nprocs)
        total = sum(v[0] for v in res.returns.values() if v is not None)
        assert total == units * workers
