"""End-to-end verification of the paper's benchmark skeletons.

Table II only measures self-run overhead; these tests additionally push
each wildcard-bearing skeleton through the full coverage loop at small
scale, checking the verifier copes with real code shapes (pipelines,
rings, servers) and that the deterministic codes stay single-schedule.
"""

import pytest

from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier
from repro.mpi.request import RequestState
from repro.mpi.runtime import run_program
from repro.workloads.nas import NAS_PROGRAMS, lu_program
from repro.workloads.parmetis import parmetis_program
from repro.workloads.specmpi import milc_program, spec_lu_program

from tests.conftest import run_ok


CFG = DampiConfig(enable_monitor=False, max_interleavings=60)


class TestDeterministicSkeletonsSingleSchedule:
    @pytest.mark.parametrize("name", ["CG", "EP", "FT", "IS", "MG", "BT", "DT"])
    def test_nas_deterministic(self, name):
        prog, kwargs = NAS_PROGRAMS[name]
        rep = DampiVerifier(prog, 8, CFG, kwargs=kwargs).verify()
        assert rep.interleavings == 1
        assert rep.wildcards_analyzed == 0

    def test_parmetis_deterministic(self):
        rep = DampiVerifier(
            parmetis_program, 4, CFG, kwargs={"scale": 0.002}
        ).verify()
        assert rep.interleavings == 1


class TestWildcardSkeletonsUnderCoverage:
    def test_lu_pipeline(self):
        rep = DampiVerifier(
            lu_program, 6, CFG, kwargs={"sweeps": 2, "pencil": 3, "chain": 3}
        ).verify()
        # the head-of-pipeline wildcard has a unique sender: no explosion
        assert rep.interleavings == 1
        assert rep.wildcards_analyzed == 4  # ranks with an upstream, sweep 0
        assert not any(e.kind in ("crash", "deadlock") for e in rep.errors)

    def test_milc_ring(self):
        rep = DampiVerifier(milc_program, 4, CFG, kwargs={"iters": 3}).verify()
        assert rep.wildcards_analyzed == 12
        assert not any(e.kind in ("crash", "deadlock") for e in rep.errors)

    def test_spec_lu_budgeted_wildcards(self):
        rep = DampiVerifier(
            spec_lu_program, 5, CFG, kwargs={"sweeps": 2, "wildcard_budget": 2}
        ).verify()
        assert rep.wildcards_analyzed == 1  # rank 1 only (rank 0 has no upstream)
        assert not any(e.kind in ("crash", "deadlock") for e in rep.errors)


class TestWaitsomeTestsome:
    def test_waitsome_consumes_ready_batch(self):
        def prog2(p):
            if p.rank == 0:
                reqs = [p.world.irecv(source=1, tag=i) for i in range(4)]
                p.world.barrier()
                done = set()
                while len(done) < 4:
                    indices, statuses = p.waitsome(reqs)
                    assert len(indices) == len(statuses) >= 1
                    done.update(indices)
                assert done == {0, 1, 2, 3}
            else:
                p.world.barrier()
                for i in range(4):
                    p.world.send(i, dest=0, tag=i)

        run_ok(prog2, 2)

    def test_testsome_nonblocking(self):
        def prog(p):
            if p.rank == 0:
                reqs = [p.world.irecv(source=1, tag=i) for i in range(2)]
                indices, statuses = p.testsome(reqs)
                assert indices == [] and statuses == []
                p.world.barrier()
                # after the barrier both sends are queued and matched
                total = set()
                while len(total) < 2:
                    idx, _ = p.testsome(reqs)
                    total.update(idx)
            else:
                p.world.send("a", dest=0, tag=0)
                p.world.send("b", dest=0, tag=1)
                p.world.barrier()

        run_ok(prog, 2)
