"""Workload skeletons: they run clean, and their calibration targets hold."""

import numpy as np
import pytest

from repro.dampi.config import DampiConfig
from repro.dampi.verifier import DampiVerifier, measure_slowdown
from repro.mpi.tracing import OpClass, TraceModule
from repro.workloads.matmult import matmult_abstracted, matmult_program
from repro.workloads.nas import NAS_PROGRAMS
from repro.workloads.parmetis import neighbor_count, parmetis_program, round_count
from repro.workloads.specmpi import SPEC_PROGRAMS
from repro.workloads.stencils import grid_partners, payload_of, ring_partners

from tests.conftest import run_ok


class TestStencils:
    def test_ring_partners_symmetric(self):
        for size in (4, 7, 16):
            for rank in range(size):
                for peer in ring_partners(rank, size, 4):
                    assert rank in ring_partners(peer, size, 4)

    def test_grid_partners_symmetric(self):
        for size in (4, 6, 9, 16):
            for rank in range(size):
                for peer in grid_partners(rank, size):
                    assert rank in grid_partners(peer, size), (size, rank, peer)

    def test_no_self_partner(self):
        for size in (2, 5, 8):
            for rank in range(size):
                assert rank not in ring_partners(rank, size, 6)
                assert rank not in grid_partners(rank, size)

    def test_payload_size(self):
        from repro.mpi.datatypes import sizeof

        assert abs(sizeof(payload_of(4096)) - 4096) < 64


class TestMatmult:
    def test_product_is_correct(self):
        res = run_ok(matmult_program, 4, kwargs={"n": 12, "blocks_per_slave": 2})
        a = res.returns[0]
        assert a.shape == (12, 12)

    def test_needs_two_ranks(self):
        from repro.mpi.runtime import run_program

        res = run_program(matmult_program, 1)
        assert any(isinstance(e, ValueError) for e in res.primary_errors.values())

    def test_every_interleaving_preserves_product(self):
        rep = DampiVerifier(
            matmult_program, 3, kwargs={"n": 8, "blocks_per_slave": 2}
        ).verify()
        assert rep.ok, rep.summary()
        assert rep.interleavings >= 4

    def test_abstracted_variant_explores_once(self):
        rep = DampiVerifier(
            matmult_abstracted, 3, kwargs={"n": 8, "blocks_per_slave": 2}
        ).verify()
        assert rep.interleavings == 1
        assert rep.ok

    def test_wildcard_count(self):
        rep = DampiVerifier(
            matmult_program, 4, DampiConfig(max_interleavings=1),
            kwargs={"n": 8, "blocks_per_slave": 3},
        ).verify()
        assert rep.wildcards_analyzed == 9  # blocks_per_slave * nslaves


class TestParmetis:
    def test_deterministic_and_clean_except_planted_leak(self):
        from repro.dampi.leaks import LeakCheckModule

        res = run_ok(
            parmetis_program, 4, modules=[LeakCheckModule()], kwargs={"scale": 0.005}
        )
        leaks = res.artifacts["leaks"]
        assert leaks.has_comm_leak  # the planted ParMETIS C-Leak
        assert not leaks.has_request_leak

    def test_no_wildcards(self):
        cfg = DampiConfig(max_interleavings=2, enable_leak_check=False)
        rep = DampiVerifier(
            parmetis_program, 4, cfg, kwargs={"scale": 0.005}
        ).verify()
        assert rep.wildcards_analyzed == 0
        assert rep.interleavings == 1

    def test_op_growth_matches_table1_shape(self):
        """Total ops grow much faster than per-proc ops (Table I's point)."""
        rows = {}
        for np_ in (8, 16):
            tm = TraceModule()
            res = run_ok(parmetis_program, np_, modules=[tm], kwargs={"scale": 0.02})
            rows[np_] = res.artifacts["trace"]
        total_growth = rows[16].total() / rows[8].total()
        pp_growth = rows[16].per_proc() / rows[8].per_proc()
        assert total_growth > 1.9  # paper: ~2.5x per doubling
        assert 1.0 < pp_growth < 1.6  # paper: ~1.3x per doubling

    def test_collectives_per_proc_shrink(self):
        rows = {}
        for np_ in (8, 32):
            tm = TraceModule()
            res = run_ok(parmetis_program, np_, modules=[tm], kwargs={"scale": 0.02})
            rows[np_] = res.artifacts["trace"]
        assert rows[32].per_proc(OpClass.COLLECTIVE) < rows[8].per_proc(
            OpClass.COLLECTIVE
        )

    def test_knob_functions(self):
        assert neighbor_count(8) >= 2
        assert neighbor_count(128) > neighbor_count(8)
        assert round_count(0.5) == round_count(1.0) // 2


@pytest.mark.parametrize("name", sorted(NAS_PROGRAMS))
def test_nas_skeleton_runs_clean(name):
    prog, kwargs = NAS_PROGRAMS[name]
    run_ok(prog, 16, kwargs=kwargs)


@pytest.mark.parametrize("name", sorted(SPEC_PROGRAMS))
def test_spec_skeleton_runs_clean(name):
    prog, kwargs = SPEC_PROGRAMS[name]
    run_ok(prog, 16, kwargs=kwargs)


class TestTable2Properties:
    def test_wildcard_counts_scale_with_ranks(self):
        from repro.workloads.specmpi import milc_program, spec_lu_program
        from repro.workloads.nas import lu_program

        cfg = DampiConfig(enable_monitor=False)
        m = measure_slowdown(milc_program, 16, cfg, kwargs={"iters": 10})
        assert m["wildcards"] == 16 * 10
        m = measure_slowdown(lu_program, 16, cfg)
        # one wildcard per rank that has an upstream neighbour in its chain
        assert m["wildcards"] == 15
        m = measure_slowdown(spec_lu_program, 16, cfg, kwargs={"wildcard_budget": 5})
        assert m["wildcards"] == 4  # ranks 1..4 (rank 0 has no upstream)

    def test_planted_leaks_locations(self):
        from repro.workloads.nas import bt_program, cg_program, ft_program

        cfg = DampiConfig(enable_monitor=False)
        assert measure_slowdown(bt_program, 8, cfg)["comm_leak"]
        assert measure_slowdown(ft_program, 8, cfg)["comm_leak"]
        assert not measure_slowdown(cg_program, 8, cfg)["comm_leak"]

    def test_milc_is_much_slower_than_ep(self):
        from repro.workloads.nas import ep_program
        from repro.workloads.specmpi import milc_program

        cfg = DampiConfig(enable_monitor=False)
        milc = measure_slowdown(milc_program, 16, cfg)["slowdown"]
        ep = measure_slowdown(ep_program, 16, cfg)["slowdown"]
        assert milc > 4 * ep
